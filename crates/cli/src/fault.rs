//! Deterministic fault injection for the campaign fabric.
//!
//! [`FaultyLink`] wraps any [`WorkerLink`] and perturbs it according to a
//! seeded [`FaultPlan`]: messages are dropped, frames truncated, the link
//! severed, or traffic delayed — the hostile-network failure menagerie,
//! replayable bit-for-bit from the seed. `tests/fleet_faults.rs` uses it
//! to prove the driver's robustness ladder keeps
//! `CampaignReport::fingerprint()` identical to the clean in-process run
//! under every injected failure mode.
//!
//! The wrapper is deliberately *typed* (it perturbs whole messages, not
//! bytes): byte-level truncation of a frame in flight is covered by the
//! worker's malformed-line tolerance and `TcpLink`'s mid-frame EOF
//! detection, which this module models as a lost message plus a dead link
//! — the driver-observable outcomes are the same.

use crate::drive::WorkerLink;
use amulet_core::proto::{CampaignSpec, Msg};
use amulet_util::Xoshiro256;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A seeded hostile-*client* script for the session-hardening harness:
/// deterministically generates the traffic an adversarial client throws
/// at `amulet serve` — malformed frames, protocol-legal-but-unexpected
/// messages, byte-at-a-time slow-writer chunkings, and mid-frame
/// disconnect prefixes — so every attack mix in `tests/serve_overload.rs`
/// replays bit-for-bit from its seed. The typed sibling of [`FaultyLink`]
/// (which perturbs the *worker* fabric); this one speaks raw bytes,
/// because the session layer's defenses live below the message layer.
#[derive(Debug)]
pub struct AdversarialPlan {
    rng: Xoshiro256,
}

impl AdversarialPlan {
    /// A plan replayable from `seed`.
    pub fn new(seed: u64) -> Self {
        AdversarialPlan {
            rng: Xoshiro256::seed_from_u64(seed),
        }
    }

    /// One line guaranteed to fail `Msg::parse_line` — random printable
    /// junk, an unknown tag, a truncated real submit, or a type-confused
    /// field. Never empty (empty lines are legitimately skipped).
    pub fn malformed_line(&mut self) -> String {
        match self.rng.range(0, 4) {
            0 => {
                let len = self.rng.range(1, 40) as usize;
                (0..len)
                    .map(|_| char::from(b'#' + self.rng.range(0, 60) as u8))
                    .collect()
            }
            1 => "{\"type\":\"no_such_message\"}".into(),
            2 => {
                let full = Msg::Submit(self.spec()).to_line();
                let cut = 1 + self.rng.range(0, full.len() as u64 - 1) as usize;
                full[..cut].into()
            }
            _ => "{\"type\":\"submit\",\"seed\":\"not-a-number\"}".into(),
        }
    }

    /// A syntactically valid message no client may send to the service —
    /// exercises the "unexpected message" strike, not the parser.
    pub fn unexpected_line(&mut self) -> String {
        let token = self.rng.range(0, 1 << 20);
        match self.rng.range(0, 2) {
            0 => Msg::Ping { token }.to_line(),
            _ => Msg::Pong { token }.to_line(),
        }
    }

    /// Splits `frame` into the 1–3-byte chunks of a slow writer — the
    /// slowloris shape: each chunk is a separate write, arbitrarily far
    /// apart in time.
    pub fn slow_chunks(&mut self, frame: &[u8]) -> Vec<Vec<u8>> {
        let mut chunks = Vec::new();
        let mut at = 0;
        while at < frame.len() {
            let end = (at + self.rng.range(1, 4) as usize).min(frame.len());
            chunks.push(frame[at..end].to_vec());
            at = end;
        }
        chunks
    }

    /// A strict prefix of `frame` — what a peer that dies mid-frame
    /// leaves on the wire. Never the whole frame (that would be a clean
    /// message, not a disconnect artifact).
    pub fn partial_prefix(&mut self, frame: &[u8]) -> Vec<u8> {
        let max = frame.len().saturating_sub(1).max(1);
        let cut = (1 + self.rng.range(0, max as u64) as usize).min(max);
        frame[..cut.min(frame.len())].to_vec()
    }

    /// A well-formed spec for the truncation variant — the prefix of a
    /// *real* submit is the most camouflaged malformed line there is.
    fn spec(&mut self) -> CampaignSpec {
        CampaignSpec {
            defense: "Baseline".into(),
            contract: "CT-SEQ".into(),
            source: "PHT".into(),
            seed: self.rng.range(0, 1 << 30),
            scale: None,
            find_first: false,
            batch_programs: 3,
            cycle_skip: true,
        }
    }
}

/// Per-operation fault probabilities in permille (0–1000), plus the seed
/// the decision stream derives from.
///
/// Reconnects must not replay the same decision stream — a link that
/// severs on its first send would then sever on *every* reconnect and no
/// campaign could ever finish — so give each [`FaultyLink`] a distinct
/// seed (e.g. `plan.with_seed(base ^ connection_counter)`).
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// Seed of this link's decision stream.
    pub seed: u64,
    /// Chance a message silently vanishes in flight (‰ per operation).
    pub drop_per_mille: u64,
    /// Chance a frame arrives truncated — a hard receive error (‰).
    pub truncate_per_mille: u64,
    /// Chance the connection dies, permanently for this link (‰).
    pub sever_per_mille: u64,
    /// Chance an operation is delayed by [`FaultPlan::delay`] first (‰).
    pub delay_per_mille: u64,
    /// The injected delay.
    pub delay: Duration,
}

impl FaultPlan {
    /// A plan that injects nothing (the identity wrapper).
    pub fn none(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_per_mille: 0,
            truncate_per_mille: 0,
            sever_per_mille: 0,
            delay_per_mille: 0,
            delay: Duration::ZERO,
        }
    }

    /// A genuinely hostile network: every failure mode active, aggressive
    /// enough that a short campaign sees each one several times.
    pub fn hostile(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_per_mille: 40,
            truncate_per_mille: 40,
            sever_per_mille: 20,
            delay_per_mille: 60,
            delay: Duration::from_millis(1),
        }
    }

    /// The same probabilities under a different decision stream.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Shared tally of injected faults — lets a test assert the hostile path
/// actually fired (a fault test that injected nothing proves nothing).
#[derive(Debug, Default)]
pub struct FaultCounters {
    /// Messages silently dropped.
    pub dropped: AtomicUsize,
    /// Frames truncated (receive errors).
    pub truncated: AtomicUsize,
    /// Links severed.
    pub severed: AtomicUsize,
    /// Operations delayed.
    pub delayed: AtomicUsize,
}

impl FaultCounters {
    /// Total injected faults of all kinds (delays included).
    pub fn total(&self) -> usize {
        self.dropped.load(Ordering::Relaxed)
            + self.truncated.load(Ordering::Relaxed)
            + self.severed.load(Ordering::Relaxed)
            + self.delayed.load(Ordering::Relaxed)
    }
}

enum Fault {
    None,
    Drop,
    Truncate,
    Sever,
    Delay,
}

/// A [`WorkerLink`] that injects faults from a seeded plan. Once severed,
/// every further operation fails (a dead socket stays dead).
pub struct FaultyLink<L> {
    inner: L,
    rng: Xoshiro256,
    plan: FaultPlan,
    counters: Arc<FaultCounters>,
    dead: bool,
}

impl<L: WorkerLink> FaultyLink<L> {
    /// Wraps `inner` under `plan`, tallying into `counters`.
    pub fn new(inner: L, plan: FaultPlan, counters: Arc<FaultCounters>) -> Self {
        FaultyLink {
            inner,
            rng: Xoshiro256::seed_from_u64(plan.seed),
            plan,
            counters,
            dead: false,
        }
    }

    /// One decision draw. Always consumes exactly one RNG value so the
    /// decision stream depends only on the operation count, not on which
    /// faults are enabled.
    fn roll(&mut self) -> Fault {
        let r = self.rng.range(0, 1000);
        let p = &self.plan;
        let mut edge = p.drop_per_mille;
        if r < edge {
            return Fault::Drop;
        }
        edge += p.truncate_per_mille;
        if r < edge {
            return Fault::Truncate;
        }
        edge += p.sever_per_mille;
        if r < edge {
            return Fault::Sever;
        }
        edge += p.delay_per_mille;
        if r < edge {
            return Fault::Delay;
        }
        Fault::None
    }
}

impl<L: WorkerLink> WorkerLink for FaultyLink<L> {
    fn send(&mut self, msg: &Msg) -> Result<(), String> {
        if self.dead {
            return Err("injected: link severed".into());
        }
        match self.roll() {
            Fault::Sever => {
                self.dead = true;
                self.counters.severed.fetch_add(1, Ordering::Relaxed);
                Err("injected: link severed mid-send".into())
            }
            // A frame cut mid-line on the way out is, to the worker, a
            // malformed line it skips — indistinguishable from a drop at
            // this layer, but tallied separately.
            Fault::Drop => {
                self.counters.dropped.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Fault::Truncate => {
                self.counters.truncated.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Fault::Delay => {
                self.counters.delayed.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(self.plan.delay);
                self.inner.send(msg)
            }
            Fault::None => self.inner.send(msg),
        }
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Msg>, String> {
        if self.dead {
            return Err("injected: link severed".into());
        }
        match self.roll() {
            Fault::Sever => {
                self.dead = true;
                self.counters.severed.fetch_add(1, Ordering::Relaxed);
                Err("injected: link severed mid-receive".into())
            }
            Fault::Truncate => {
                self.counters.truncated.fetch_add(1, Ordering::Relaxed);
                Err("injected: truncated frame".into())
            }
            // The reply (if any arrives promptly) is swallowed and the
            // caller sees a silent link. Waiting out the caller's full
            // deadline would only slow tests down — the caller tears the
            // link down on `None` either way, so an unconsumed late reply
            // dies with the link.
            Fault::Drop => {
                self.counters.dropped.fetch_add(1, Ordering::Relaxed);
                let _ = self
                    .inner
                    .recv_timeout(timeout.min(Duration::from_millis(20)));
                Ok(None)
            }
            Fault::Delay => {
                self.counters.delayed.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(self.plan.delay);
                match timeout.checked_sub(self.plan.delay) {
                    Some(left) if !left.is_zero() => self.inner.recv_timeout(left),
                    _ => Ok(None),
                }
            }
            Fault::None => self.inner.recv_timeout(timeout),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    /// A scripted link: every send succeeds, receives pop a queue.
    struct ScriptLink {
        replies: VecDeque<Msg>,
        sends: usize,
    }

    impl WorkerLink for ScriptLink {
        fn send(&mut self, _msg: &Msg) -> Result<(), String> {
            self.sends += 1;
            Ok(())
        }
        fn recv_timeout(&mut self, _timeout: Duration) -> Result<Option<Msg>, String> {
            Ok(self.replies.pop_front())
        }
    }

    fn scripted(n: usize) -> ScriptLink {
        ScriptLink {
            replies: (0..n as u64).map(|token| Msg::Pong { token }).collect(),
            sends: 0,
        }
    }

    /// Same seed → the exact same fault sequence; different seed → (here)
    /// a different one. The determinism the whole harness rests on.
    #[test]
    fn fault_decisions_replay_from_the_seed() {
        let trace = |seed: u64| -> (Vec<String>, usize) {
            let counters = Arc::new(FaultCounters::default());
            let mut link =
                FaultyLink::new(scripted(64), FaultPlan::hostile(seed), counters.clone());
            let mut outcomes = Vec::new();
            for token in 0..64 {
                let s = match link.send(&Msg::Ping { token }) {
                    Ok(()) => "s+".to_string(),
                    Err(e) => format!("s-{e}"),
                };
                let r = match link.recv_timeout(Duration::from_millis(1)) {
                    Ok(Some(_)) => "r+".to_string(),
                    Ok(None) => "r0".to_string(),
                    Err(e) => format!("r-{e}"),
                };
                outcomes.push(format!("{s}/{r}"));
            }
            (outcomes, counters.total())
        };
        let (a, faults_a) = trace(7);
        let (b, faults_b) = trace(7);
        assert_eq!(a, b, "identical seeds must replay identically");
        assert_eq!(faults_a, faults_b);
        assert!(faults_a > 0, "the hostile plan must actually inject");
        let (c, _) = trace(8);
        assert_ne!(a, c, "a different seed must explore a different schedule");
    }

    #[test]
    fn a_severed_link_stays_dead() {
        let counters = Arc::new(FaultCounters::default());
        let plan = FaultPlan {
            sever_per_mille: 1000,
            ..FaultPlan::none(1)
        };
        let mut link = FaultyLink::new(scripted(4), plan, counters.clone());
        assert!(link.send(&Msg::Shutdown).is_err());
        assert!(link.send(&Msg::Shutdown).is_err());
        assert!(link.recv_timeout(Duration::from_millis(1)).is_err());
        assert_eq!(
            counters.severed.load(Ordering::Relaxed),
            1,
            "sever tallied once"
        );
    }

    /// Every adversarial line must actually be adversarial — a
    /// "malformed" line that parses would make the harness prove nothing
    /// — and the whole script must replay from its seed.
    #[test]
    fn adversarial_plans_are_seeded_and_genuinely_malformed() {
        for seed in 0..32 {
            let mut plan = AdversarialPlan::new(seed);
            for _ in 0..24 {
                let line = plan.malformed_line();
                assert!(
                    Msg::parse_line(&line).is_err(),
                    "seed {seed}: {line:?} unexpectedly parsed"
                );
                assert!(
                    Msg::parse_line(&plan.unexpected_line()).is_ok(),
                    "unexpected lines must be protocol-valid"
                );
            }
        }
        let script = |seed: u64| {
            let mut plan = AdversarialPlan::new(seed);
            let lines: Vec<String> = (0..16).map(|_| plan.malformed_line()).collect();
            let chunks = plan.slow_chunks(b"{\"type\":\"ping\",\"token\":1}\n");
            let prefix = plan.partial_prefix(b"{\"type\":\"ping\",\"token\":1}\n");
            (lines, chunks, prefix)
        };
        assert_eq!(script(9), script(9), "same seed must replay");
        assert_ne!(script(9).0, script(10).0, "different seeds must differ");
        let (_, chunks, prefix) = script(9);
        let frame = b"{\"type\":\"ping\",\"token\":1}\n";
        assert_eq!(chunks.concat(), frame, "chunks must reassemble the frame");
        assert!(chunks.iter().all(|c| !c.is_empty() && c.len() <= 3));
        assert!(prefix.len() < frame.len(), "a partial frame is a prefix");
        assert_eq!(&frame[..prefix.len()], &prefix[..]);
    }

    #[test]
    fn the_empty_plan_is_the_identity() {
        let counters = Arc::new(FaultCounters::default());
        let mut link = FaultyLink::new(scripted(2), FaultPlan::none(3), counters.clone());
        link.send(&Msg::Ping { token: 0 }).unwrap();
        assert!(matches!(
            link.recv_timeout(Duration::from_millis(1)).unwrap(),
            Some(Msg::Pong { token: 0 })
        ));
        assert_eq!(counters.total(), 0);
    }
}
