//! TCP transport for the campaign fabric — the cross-host half of
//! `amulet drive --connect` / `amulet worker --listen`.
//!
//! The wire format is *identical* to the pipe transport: newline-delimited
//! `amulet_core::proto` JSON messages. [`TcpLink`] is the driver side (a
//! [`WorkerLink`] with real deadlines via `SO_RCVTIMEO`); [`serve_listener`]
//! is the worker side — accept one connection at a time, run the ordinary
//! serve loop over it, and go back to accepting, so a driver reconnect
//! after a network fault lands on a fresh session of the same process.
//!
//! Zero dependencies beyond `std::net`. No TLS, no auth — the fabric is
//! meant for trusted lab networks (see `docs/DISTRIBUTED.md`).

use crate::drive::WorkerLink;
use crate::worker::serve_session;
use amulet_core::proto::Msg;
use amulet_core::CampaignConfig;
use amulet_util::JsonObj;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Writes get a generous fixed deadline: protocol messages are tiny, so a
/// send that stalls this long means the peer stopped draining its socket —
/// dead for the driver's purposes.
const WRITE_TIMEOUT: Duration = Duration::from_secs(30);

/// The driver's end of one TCP worker connection.
///
/// Line framing is done here with a persistent buffer: a read deadline
/// that expires mid-frame keeps the partial line and resumes on the next
/// call, so slow-but-alive peers lose nothing while dead peers are
/// detected by the caller's retry ladder.
#[derive(Debug)]
pub struct TcpLink {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    line: String,
}

impl TcpLink {
    /// Connects to `addr` (`host:port`) with a connect deadline per
    /// resolved address.
    pub fn connect(addr: &str, timeout: Duration) -> Result<Self, String> {
        let resolved: Vec<SocketAddr> = addr
            .to_socket_addrs()
            .map_err(|e| format!("cannot resolve {addr}: {e}"))?
            .collect();
        let mut last = format!("{addr}: no addresses resolved");
        for sock in &resolved {
            match TcpStream::connect_timeout(sock, timeout) {
                Ok(stream) => return Self::from_stream(stream),
                Err(e) => last = format!("cannot connect to {sock}: {e}"),
            }
        }
        Err(last)
    }

    /// Wraps an already-connected stream (used by tests and by churn
    /// injectors that pre-open sockets).
    pub fn from_stream(stream: TcpStream) -> Result<Self, String> {
        // Every protocol message is latency-critical (the scheduler blocks
        // on it) and tiny — Nagle only hurts here.
        stream
            .set_nodelay(true)
            .map_err(|e| format!("set_nodelay failed: {e}"))?;
        stream
            .set_write_timeout(Some(WRITE_TIMEOUT))
            .map_err(|e| format!("set_write_timeout failed: {e}"))?;
        let reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| format!("cannot clone stream: {e}"))?,
        );
        Ok(TcpLink {
            stream,
            reader,
            line: String::new(),
        })
    }
}

impl WorkerLink for TcpLink {
    fn send(&mut self, msg: &Msg) -> Result<(), String> {
        writeln!(self.stream, "{}", msg.to_line())
            .and_then(|()| self.stream.flush())
            .map_err(|e| format!("tcp write failed: {e}"))
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Msg>, String> {
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Ok(None);
            }
            // SO_RCVTIMEO carries the deadline into the kernel; a timeout
            // mid-line leaves the partial frame in `self.line` for the
            // next call (read_line appends).
            self.stream
                .set_read_timeout(Some(remaining))
                .map_err(|e| format!("set_read_timeout failed: {e}"))?;
            match self.reader.read_line(&mut self.line) {
                Ok(0) => return Err("peer closed the connection".into()),
                Ok(_) if self.line.ends_with('\n') => {
                    let msg = Msg::parse_line(&self.line);
                    self.line.clear();
                    return msg.map(Some);
                }
                // read_line returns Ok(n) without a newline only at EOF:
                // the peer died mid-frame.
                Ok(_) => {
                    return Err(format!(
                        "peer closed the connection mid-frame ({} bytes)",
                        self.line.len()
                    ))
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                    ) =>
                {
                    continue
                }
                Err(e) => return Err(format!("tcp read failed: {e}")),
            }
        }
    }
}

/// Worker-side settings for `amulet worker --listen`.
#[derive(Debug, Clone)]
pub struct ListenConfig {
    /// Bind address, e.g. `0.0.0.0:7711` (or `127.0.0.1:0` to let the OS
    /// pick a free port — the bound address is announced on stderr).
    pub addr: String,
    /// Serve this many driver sessions, then exit; `0` = forever.
    pub sessions: usize,
    /// Per-session idle deadline: a session with no traffic for this long
    /// ends (the listener then accepts the next connection). `None` =
    /// wait forever.
    pub idle_timeout: Option<Duration>,
}

/// Binds `addr` and serves driver sessions sequentially, announcing the
/// bound address as a structured JSON line on `log` first (so scripts and
/// tests can scrape the port when binding to `:0`).
///
/// A session error (malformed traffic, mid-batch disconnect) is logged
/// and the listener keeps accepting: driver reconnects after a network
/// fault are routine, not fatal.
pub fn serve_listener(cfg: &CampaignConfig, listen: &ListenConfig) -> Result<(), String> {
    let listener =
        TcpListener::bind(&listen.addr).map_err(|e| format!("cannot bind {}: {e}", listen.addr))?;
    let local = listener
        .local_addr()
        .map_err(|e| format!("cannot read bound address: {e}"))?;
    let mut log = std::io::stderr();
    let _ = writeln!(
        log,
        "{}",
        JsonObj::new()
            .str("event", "listening")
            .str("addr", &local.to_string())
            .int("pid", u64::from(std::process::id()))
            .finish()
    );
    let mut served = 0usize;
    loop {
        let (stream, peer) = listener
            .accept()
            .map_err(|e| format!("accept failed: {e}"))?;
        let _ = stream.set_nodelay(true);
        if let Some(idle) = listen.idle_timeout {
            let _ = stream.set_read_timeout(Some(idle));
        }
        let _ = writeln!(
            log,
            "{}",
            JsonObj::new()
                .str("event", "session_start")
                .str("peer", &peer.to_string())
                .finish()
        );
        let reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| format!("cannot clone stream: {e}"))?,
        );
        match serve_session(cfg, reader, &stream, &mut log) {
            Ok(stats) => {
                let _ = writeln!(
                    log,
                    "{}",
                    JsonObj::new()
                        .str("event", "session_end")
                        .int("batches", stats.batches as u64)
                        .int("skipped", stats.skipped as u64)
                        .int("pings", stats.pings as u64)
                        .int("malformed", stats.malformed as u64)
                        .finish()
                );
            }
            Err(e) => {
                let _ = writeln!(
                    log,
                    "{}",
                    JsonObj::new()
                        .str("event", "session_error")
                        .str("error", &e)
                        .finish()
                );
            }
        }
        served += 1;
        if listen.sessions != 0 && served >= listen.sessions {
            return Ok(());
        }
    }
}

/// Splits a `--connect` list (`host:port,host:port,...`) into addresses.
pub fn parse_connect_list(list: &str) -> Result<Vec<String>, String> {
    let addrs: Vec<String> = list
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_owned)
        .collect();
    if addrs.is_empty() {
        Err("--connect: expected host:port[,host:port...]".into())
    } else {
        Ok(addrs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amulet_contracts::ContractKind;
    use amulet_defenses::DefenseKind;

    #[test]
    fn connect_list_parses_and_rejects_empty() {
        assert_eq!(
            parse_connect_list("a:1, b:2 ,c:3").unwrap(),
            vec!["a:1", "b:2", "c:3"]
        );
        assert!(parse_connect_list(" , ,").is_err());
    }

    /// A full protocol exchange over a real loopback socket: hello,
    /// heartbeat, shutdown — with the worker side served by a thread.
    #[test]
    fn tcp_link_round_trips_the_protocol_over_loopback() {
        let cfg = CampaignConfig::quick(DefenseKind::Baseline, ContractKind::CtSeq);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server_cfg = cfg.clone();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let reader = BufReader::new(stream.try_clone().unwrap());
            serve_session(&server_cfg, reader, &stream, &mut std::io::sink()).unwrap()
        });

        let mut link = TcpLink::connect(&addr.to_string(), Duration::from_secs(5)).unwrap();
        let Msg::Hello(hello) = link.recv().unwrap() else {
            panic!("expected hello")
        };
        hello.check(&cfg).unwrap();
        link.send(&Msg::Ping { token: 0xfeed }).unwrap();
        assert!(matches!(
            link.recv_timeout(Duration::from_secs(5)).unwrap(),
            Some(Msg::Pong { token: 0xfeed })
        ));
        link.send(&Msg::Shutdown).unwrap();
        let stats = server.join().unwrap();
        assert_eq!(stats.pings, 1);
        assert_eq!(stats.batches, 0);
    }

    /// A deadline on a silent (connected but mute) peer returns `Ok(None)`
    /// instead of blocking, and a partial frame survives across calls.
    #[test]
    fn recv_timeout_expires_on_a_silent_peer_and_keeps_partial_frames() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            // Half a frame, then silence, then the rest.
            let line = Msg::Ping { token: 0xabcd }.to_line();
            let (a, b) = line.split_at(line.len() / 2);
            stream.write_all(a.as_bytes()).unwrap();
            std::thread::sleep(Duration::from_millis(200));
            stream.write_all(b.as_bytes()).unwrap();
            stream.write_all(b"\n").unwrap();
            stream
        });

        let mut link = TcpLink::connect(&addr.to_string(), Duration::from_secs(5)).unwrap();
        // First deadline expires mid-frame...
        assert!(link
            .recv_timeout(Duration::from_millis(30))
            .unwrap()
            .is_none());
        // ...and the reassembled frame arrives whole on a later call.
        let got = link.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(
            matches!(got, Some(Msg::Ping { token: 0xabcd })),
            "got {got:?}"
        );
        drop(server.join().unwrap());
    }

    /// A peer that vanishes mid-frame is an error (truncated frame), not a
    /// silent hang.
    #[test]
    fn a_peer_dying_mid_frame_is_a_truncation_error() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            stream.write_all(b"{\"type\":\"hel").unwrap();
            // Dropping the stream closes the socket mid-frame.
        });

        let mut link = TcpLink::connect(&addr.to_string(), Duration::from_secs(5)).unwrap();
        server.join().unwrap();
        let err = link.recv_timeout(Duration::from_secs(5)).unwrap_err();
        assert!(err.contains("mid-frame"), "unexpected error: {err}");
    }
}
