//! The `amulet` command line — campaigns, scenario matrices, a quick
//! throughput bench, and the multi-process campaign fabric, with zero
//! external dependencies (the argument parser is hand-rolled here; the
//! JSON writer/parser live in `amulet_util::json`).
//!
//! Subcommands, mirroring how the paper's evaluation is driven:
//!
//! - `amulet campaign` — one defense × contract campaign, sharded across a
//!   worker pool by default (`--instance-parallel` restores the classic one
//!   thread per instance).
//! - `amulet matrix` — every requested defense × contract scenario at the
//!   quick or paper-scaled shape, one summary row each, optionally as
//!   machine-readable JSON lines.
//! - `amulet bench` — instance-parallel vs. sharded quick-campaign
//!   throughput on this host.
//! - `amulet drive` — the same campaign sharded over `--procs` **worker
//!   processes** (spawned `amulet worker` children speaking
//!   `amulet_core::proto` over pipes) or over `--connect host:port,...`
//!   **TCP workers** on other hosts, fingerprint-identical to the
//!   in-process run and robust to worker crashes, hangs and churn; see
//!   [`drive`], [`net`] and `docs/DISTRIBUTED.md`.
//! - `amulet worker` — the serving end of `drive`: stdin/stdout when
//!   spawned, `--listen ADDR` for TCP (also usable by external drivers
//!   speaking the protocol); see [`worker`].
//! - `amulet serve` — the long-lived campaign service: accepts `submit`
//!   requests over TCP, fair-shares one worker fleet (in-process threads
//!   plus `--connect` TCP workers) across concurrent campaigns, answers
//!   repeated submits from a fingerprint-keyed result cache, and persists
//!   validated violations to a corpus; with the `amulet submit` client and
//!   the `amulet corpus` query tool. See [`serve`].
//!
//! The library half exists so the parsing, report formatting and the
//! fabric's driver/worker loops are unit testable; `src/main.rs` only
//! forwards `std::env::args` to [`run`].
//!
//! # Examples
//!
//! ```
//! use amulet_cli::{parse_defense, parse_contract};
//! use amulet_defenses::DefenseKind;
//! use amulet_contracts::ContractKind;
//!
//! assert_eq!(parse_defense("baseline"), Ok(DefenseKind::Baseline));
//! assert_eq!(parse_contract("ct-seq"), Ok(ContractKind::CtSeq));
//! ```

pub mod drive;
pub mod fault;
pub mod net;
pub mod serve;
pub mod worker;

use amulet_contracts::ContractKind;
use amulet_core::{
    boundary_row, BoundaryConfig, Campaign, CampaignConfig, CampaignReport, ShardConfig, SpecSource,
};
use amulet_defenses::DefenseKind;
use std::time::Instant;

pub use amulet_util::{json_string, JsonObj};
pub use drive::{run_driver, DriveConfig, ProcLink, WorkerLink};
pub use fault::{AdversarialPlan, FaultCounters, FaultPlan, FaultyLink};
pub use net::{parse_connect_list, serve_listener, ListenConfig, TcpLink};
pub use serve::{serve_client, serve_client_with, ClientStats, ServiceHost, SessionLimits};
pub use worker::{serve_session, serve_worker, SessionStats};

/// Usage text printed by `amulet help` (and on usage errors).
pub const USAGE: &str = "\
amulet — automated design-time testing of secure speculation countermeasures

USAGE:
    amulet <SUBCOMMAND> [OPTIONS]

SUBCOMMANDS:
    campaign    Run one defense × contract campaign (sharded by default)
    matrix      Run a defense × contract scenario matrix
    boundary    Walk the contract lattice to localise each defense's
                leakage boundary (one campaign per contract, by strength)
    bench       Compare instance-parallel vs sharded quick-campaign throughput
    drive       Run one campaign across worker *processes* (multi-process fabric)
    worker      Serve batches over stdin/stdout (spawned by `drive`)
    serve       Long-lived campaign service (submit/cache/corpus over TCP)
    submit      Submit one campaign to a running `amulet serve` daemon
    corpus      Query a persisted violation corpus file
    list        List available defenses and contracts
    help        Show this message

CAMPAIGN OPTIONS:
    --defense NAME        Defense under test (default: Baseline; see `amulet list`)
    --contract NAME       Contract to test against (default: CT-SEQ)
    --scale X             Paper-scaled shape at scale X (default: quick shape)
    --seed N              Campaign seed (default: 2025)
    --find-first          Stop at the first confirmed violation
    --source NAME         Speculation source: PHT (branch misprediction, the
                          default) or STL (store-to-load misspeculation)
    --workers N           Worker threads (default: all hardware threads)
    --batch N             Programs per shard batch (default: 4)
    --instance-parallel   Classic orchestrator: one thread per instance
    --no-cycle-skip       Step every simulator cycle (disable the event-driven
                          time-warp scheduler; results are bit-identical)
    --json PATH           Append a JSON report line to PATH (`-` = stdout)

MATRIX OPTIONS:
    --quick               Quick shape (the default)
    --scale X             Paper-scaled shape at scale X
    --defenses A,B,...    Defenses to include (default: all)
    --contracts A,B,...   Contracts to include (default: all)
    --sources A,B,...     Speculation sources to include (default: PHT)
    --seed N, --workers N, --batch N, --no-cycle-skip, --json PATH   As above

BOUNDARY OPTIONS:
    --defenses A,B,...    Defenses to probe (default: all)
    --source NAME         Speculation source the probes test (default: PHT)
    --scale X, --seed N, --workers N, --batch N, --no-cycle-skip     As above
    --json PATH           Append one boundary row per defense as JSONL

BENCH OPTIONS:
    --programs N          Programs per instance (default: 12)
    --workers N, --batch N, --seed N, --no-cycle-skip                As above

DRIVE OPTIONS (shape options as for campaign):
    --procs N             Worker processes to spawn (default: 2)
    --connect A,B,...     Drive remote workers over TCP (host:port list;
                          one slot per address, --procs is ignored)
    --batch N             Programs per batch (part of the stream identity)
    --retries N           Reconnect-and-retry attempts per batch (default: 2)
    --quarantine-after N  Retire a slot after N consecutive batch failures
                          (default: 3)
    --liveness-s S        Handshake/heartbeat deadline in seconds (default: 10)
    --batch-timeout-s S   Per-batch fragment deadline in seconds (default: 120)
    --fragments PATH      Tee received fragment JSONL to PATH
    --events PATH         Append the fleet event log (connects, failures,
                          backoff, quarantines) as JSONL to PATH
    --json PATH           Append the reduced campaign report line to PATH

WORKER OPTIONS (shape options as for campaign):
    --listen ADDR         Serve the protocol over TCP on ADDR (e.g.
                          0.0.0.0:7711; :0 picks a port, announced on stderr)
    --sessions N          With --listen: exit after N driver sessions (0 = forever)
    --idle-timeout-s S    With --listen: end a session after S idle seconds
    without --listen: speaks the wire protocol on stdin/stdout
    (see docs/DISTRIBUTED.md)

SERVE OPTIONS:
    --listen ADDR         Accept campaign clients on ADDR (required; :0 picks
                          a port, announced on stderr)
    --workers N           In-process worker threads (default: 1)
    --connect A,B,...     Also lease batches to remote `amulet worker --listen`
                          processes at these addresses
    --corpus PATH         Append validated violations to this corpus JSONL file
    --state-dir DIR       Crash-safe persistence: write-ahead journal every
                          campaign and persist the result cache under DIR;
                          on startup, recover and resume interrupted work
    --sessions N          Exit after N client sessions (0 = forever)
    --max-campaigns N     Admission: campaigns executing concurrently
                          (default: 0 = unlimited)
    --admit-queue N       Admitted-but-waiting campaigns beyond the cap,
                          FIFO (default: 16); overflow is shed with a
                          rejected{retry_after_ms} answer
    --client-quota N      In-flight campaigns per client connection
                          (default: 0 = unlimited)
    SIGTERM drains gracefully: stop admitting, announce `draining`,
    checkpoint (--state-dir) or finish active campaigns, exit 0.

SUBMIT OPTIONS (shape options as for campaign):
    --connect ADDR        The serve daemon's address (required)
    --batch N             Programs per batch (part of the campaign identity)
    --timeout-s S         Give up after S seconds (default: 600)
    --retries N           Reconnect-and-resubmit attempts after connection
                          loss or an admission shed (which waits out the
                          server's retry_after_ms hint), seeded-jitter
                          backoff (default: 0)
    --json PATH           Append the result line to PATH (`-` = stdout)

CORPUS OPTIONS:
    --file PATH           Corpus JSONL file to query (required)
    --class ID            Only violations of this class (e.g. V1, UV2)
    --defense NAME        Only violations found under this defense
";

/// A hand-rolled argument scanner: flags and `--key value` / `--key=value`
/// pairs are consumed by the accessors, and [`Args::finish`] rejects
/// anything left over, so typos fail loudly instead of being ignored.
#[derive(Debug)]
pub struct Args {
    tokens: Vec<Option<String>>,
}

impl Args {
    /// Wraps raw arguments (without the binary and subcommand names).
    pub fn new(raw: &[String]) -> Self {
        Args {
            tokens: raw.iter().cloned().map(Some).collect(),
        }
    }

    /// Consumes a boolean flag, returning whether it was present.
    pub fn flag(&mut self, name: &str) -> bool {
        let mut found = false;
        for slot in &mut self.tokens {
            if slot.as_deref() == Some(name) {
                *slot = None;
                found = true;
            }
        }
        found
    }

    /// Consumes `--key value` or `--key=value`. Last occurrence wins.
    pub fn value(&mut self, name: &str) -> Result<Option<String>, String> {
        let mut out = None;
        let mut i = 0;
        while i < self.tokens.len() {
            let matches_bare = self.tokens[i].as_deref() == Some(name);
            let eq_value = self.tokens[i]
                .as_deref()
                .and_then(|t| t.strip_prefix(name))
                .and_then(|rest| rest.strip_prefix('='))
                .map(str::to_owned);
            if matches_bare {
                self.tokens[i] = None;
                let value = self.tokens.get_mut(i + 1).and_then(Option::take);
                match value {
                    Some(v) => out = Some(v),
                    None => return Err(format!("{name} expects a value")),
                }
                i += 2;
            } else if let Some(v) = eq_value {
                self.tokens[i] = None;
                out = Some(v);
                i += 1;
            } else {
                i += 1;
            }
        }
        Ok(out)
    }

    /// Like [`Args::value`] but parsed, with the flag name in the error.
    pub fn parsed<T: std::str::FromStr>(&mut self, name: &str) -> Result<Option<T>, String> {
        match self.value(name)? {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("{name}: cannot parse {v:?}")),
        }
    }

    /// Errors on any argument no accessor consumed.
    pub fn finish(self) -> Result<(), String> {
        let leftover: Vec<String> = self.tokens.into_iter().flatten().collect();
        if leftover.is_empty() {
            Ok(())
        } else {
            Err(format!("unrecognised arguments: {}", leftover.join(" ")))
        }
    }
}

/// Parses a defense by its display name, case-insensitively.
pub fn parse_defense(name: &str) -> Result<DefenseKind, String> {
    DefenseKind::ALL
        .iter()
        .copied()
        .find(|d| d.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| {
            format!(
                "unknown defense {name:?}; one of: {}",
                DefenseKind::ALL.map(|d| d.name()).join(", ")
            )
        })
}

/// Parses a contract by its paper name (`CT-SEQ`, ...), case-insensitively;
/// the dash may be omitted (`ctseq`).
pub fn parse_contract(name: &str) -> Result<ContractKind, String> {
    let norm = |s: &str| s.replace('-', "").to_ascii_lowercase();
    ContractKind::ALL
        .iter()
        .copied()
        .find(|c| norm(c.name()) == norm(name))
        .ok_or_else(|| {
            format!(
                "unknown contract {name:?}; one of: {}",
                ContractKind::ALL.map(|c| c.name()).join(", ")
            )
        })
}

/// Parses a speculation source by name (`PHT`, `STL`), case-insensitively.
pub fn parse_source(name: &str) -> Result<SpecSource, String> {
    SpecSource::from_name(name).ok_or_else(|| {
        format!(
            "unknown source {name:?}; one of: {}",
            SpecSource::ALL.map(|s| s.name()).join(", ")
        )
    })
}

/// Parses a comma-separated list with a per-item parser, or returns the
/// default when the flag was absent.
fn parse_list<T>(
    raw: Option<String>,
    parse: impl Fn(&str) -> Result<T, String>,
    default: &[T],
) -> Result<Vec<T>, String>
where
    T: Copy,
{
    match raw {
        None => Ok(default.to_vec()),
        Some(s) => s.split(',').map(|item| parse(item.trim())).collect(),
    }
}

/// Serialises one campaign report as a self-contained JSON line (the
/// machine-readable form of [`CampaignReport::summary_row`], plus the
/// deterministic fingerprint). `batch_programs` must be given for sharded
/// runs — the batch size is part of the deterministic case-stream identity
/// (see `amulet_core::shard`), so a line without it could not be
/// reproduced; instance-parallel runs pass `None`.
pub fn report_json(
    report: &CampaignReport,
    orchestrator: &str,
    workers: usize,
    batch_programs: Option<usize>,
) -> String {
    let mut classes = JsonObj::new();
    for (class, count) in report.unique_classes() {
        classes = classes.int(class.paper_id(), count as u64);
    }
    let mut obj = JsonObj::new()
        .str("defense", report.config.defense.name())
        .str("contract", report.config.contract.name())
        .str("mode", report.config.mode.name());
    // Omitted for the default source so pre-STL report lines (and the CI
    // greps pinned against them) stay byte-identical.
    if report.config.source != SpecSource::Pht {
        obj = obj.str("source", report.config.source.name());
    }
    let mut obj = obj
        .str("orchestrator", orchestrator)
        .int("workers", workers as u64);
    if let Some(batch) = batch_programs {
        obj = obj.int("batch_programs", batch as u64);
    }
    // The seed is a string for the same reason the fingerprint is: a u64
    // above 2^53 would be silently rounded by double-based JSON readers,
    // and a wrong seed makes the line irreproducible.
    obj.str("seed", &report.config.seed.to_string())
        .int("instances", report.config.instances as u64)
        .int(
            "programs_per_instance",
            report.config.programs_per_instance as u64,
        )
        .int("inputs_per_program", report.config.inputs.total() as u64)
        .int("cases", report.stats.cases as u64)
        .int("candidates", report.stats.candidates as u64)
        .int("validation_runs", report.stats.validation_runs as u64)
        .int("confirmed", report.stats.confirmed as u64)
        .bool("violation", report.violation_found())
        .int("unique_violations", report.unique_violation_count() as u64)
        .raw("classes", &classes.finish())
        .num(
            "avg_detection_s",
            report.avg_detection_seconds().unwrap_or(f64::NAN),
        )
        .num("cases_per_sec", report.throughput())
        .bool("cycle_skip", report.config.sim.cycle_skip)
        .int("sim_cycles", report.stats.sim_cycles)
        .num("cycles_per_case", report.cycles_per_case())
        .num("warp_ratio", report.warp_ratio())
        .num("wall_s", report.wall.as_secs_f64())
        .num("modeled_s", report.modeled_seconds)
        .str("fingerprint", &format!("{:#018x}", report.fingerprint()))
        .finish()
}

/// Where `--json` output goes.
pub(crate) enum JsonSink {
    None,
    Stdout,
    File(std::fs::File),
}

impl JsonSink {
    pub(crate) fn open(path: Option<String>) -> Result<Self, String> {
        match path.as_deref() {
            None => Ok(JsonSink::None),
            Some("-") => Ok(JsonSink::Stdout),
            Some(p) => std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(p)
                .map(JsonSink::File)
                .map_err(|e| format!("cannot open {p}: {e}")),
        }
    }

    pub(crate) fn line(&mut self, line: &str) -> Result<(), String> {
        use std::io::Write as _;
        match self {
            JsonSink::None => Ok(()),
            JsonSink::Stdout => {
                println!("{line}");
                Ok(())
            }
            JsonSink::File(f) => writeln!(f, "{line}").map_err(|e| format!("write failed: {e}")),
        }
    }
}

/// Shape options shared by `campaign` and `matrix`.
fn shape_config(
    defense: DefenseKind,
    contract: ContractKind,
    scale: Option<f64>,
    seed: Option<u64>,
) -> CampaignConfig {
    let mut cfg = match scale {
        Some(s) => CampaignConfig::paper_scaled(defense, contract, s),
        None => CampaignConfig::quick(defense, contract),
    };
    if let Some(seed) = seed {
        cfg.seed = seed;
    }
    cfg
}

/// The campaign-identity flags shared by `campaign`, `drive` and `worker` —
/// everything that determines the deterministic case stream (and therefore
/// the fingerprint), parsed once and reproducible as a worker command line.
#[derive(Debug, Clone)]
pub struct ShapeOptions {
    /// Defense under test.
    pub defense: DefenseKind,
    /// Contract to test against.
    pub contract: ContractKind,
    /// Paper-scaled shape at this scale (`None` = the quick shape).
    pub scale: Option<f64>,
    /// Campaign seed override.
    pub seed: Option<u64>,
    /// Stop at the first confirmed violation.
    pub find_first: bool,
    /// Speculation source under test (default: PHT branch misprediction).
    pub source: SpecSource,
    /// Disable the event-driven time-warp cycle scheduler.
    pub no_cycle_skip: bool,
}

impl ShapeOptions {
    /// Consumes the shape flags from `args`.
    pub fn parse(args: &mut Args) -> Result<Self, String> {
        Ok(ShapeOptions {
            defense: match args.value("--defense")? {
                Some(name) => parse_defense(&name)?,
                None => DefenseKind::Baseline,
            },
            contract: match args.value("--contract")? {
                Some(name) => parse_contract(&name)?,
                None => ContractKind::CtSeq,
            },
            scale: args.parsed::<f64>("--scale")?,
            seed: args.parsed::<u64>("--seed")?,
            find_first: args.flag("--find-first"),
            source: match args.value("--source")? {
                Some(name) => parse_source(&name)?,
                None => SpecSource::Pht,
            },
            no_cycle_skip: args.flag("--no-cycle-skip"),
        })
    }

    /// The campaign configuration these flags select.
    pub fn config(&self) -> CampaignConfig {
        let mut cfg = shape_config(self.defense, self.contract, self.scale, self.seed)
            .with_source(self.source);
        cfg.stop_on_first = self.find_first;
        cfg.sim.cycle_skip = !self.no_cycle_skip;
        cfg
    }

    /// The argument vector reproducing these flags on an `amulet worker`
    /// command line — how `drive` guarantees its workers resolve the exact
    /// campaign it will fingerprint (double-checked by the hello handshake).
    pub fn worker_argv(&self) -> Vec<String> {
        let cfg = self.config();
        let mut argv = vec![
            "--defense".into(),
            self.defense.name().into(),
            "--contract".into(),
            self.contract.name().into(),
            "--seed".into(),
            cfg.seed.to_string(),
        ];
        if let Some(scale) = self.scale {
            argv.push(format!("--scale={scale}"));
        }
        if self.find_first {
            argv.push("--find-first".into());
        }
        if self.source != SpecSource::Pht {
            argv.push("--source".into());
            argv.push(self.source.name().into());
        }
        if self.no_cycle_skip {
            argv.push("--no-cycle-skip".into());
        }
        argv
    }
}

fn shard_options(args: &mut Args) -> Result<ShardConfig, String> {
    let mut shard = ShardConfig::default();
    if let Some(w) = args.parsed::<usize>("--workers")? {
        shard.workers = w;
    }
    if let Some(b) = args.parsed::<usize>("--batch")? {
        shard.batch_programs = b.max(1);
    }
    Ok(shard)
}

/// `amulet campaign`.
fn cmd_campaign(mut args: Args) -> Result<(), String> {
    let shape = ShapeOptions::parse(&mut args)?;
    let instance_parallel = args.flag("--instance-parallel");
    let shard = shard_options(&mut args)?;
    let mut sink = JsonSink::open(args.value("--json")?)?;
    args.finish()?;

    let cfg = shape.config();
    let (orchestrator, workers) = if instance_parallel {
        ("instances", cfg.instances)
    } else {
        ("sharded", shard.resolved_workers())
    };
    eprintln!(
        "running {} × {} ({} cases, {orchestrator} orchestrator, {workers} workers)",
        shape.defense.name(),
        shape.contract.name(),
        cfg.total_cases()
    );
    let report = if instance_parallel {
        Campaign::new(cfg).run()
    } else {
        Campaign::new(cfg).run_sharded(shard)
    };

    print_report(&report);
    let batch = (!instance_parallel).then_some(shard.batch_programs);
    sink.line(&report_json(&report, orchestrator, workers, batch))
}

/// The human-readable campaign summary `campaign` and `drive` share.
pub(crate) fn print_report(report: &CampaignReport) {
    println!("{}", CampaignReport::summary_header());
    println!("{}", report.summary_row());
    for (class, count) in report.unique_classes() {
        println!("  {:<12} × {count}", class.paper_id());
    }
    println!(
        "cycles/case: {:.0} (warp ratio {:.3})",
        report.cycles_per_case(),
        report.warp_ratio()
    );
    println!("fingerprint: {:#018x}", report.fingerprint());
}

/// `amulet matrix`.
fn cmd_matrix(mut args: Args) -> Result<(), String> {
    let _quick = args.flag("--quick"); // the default shape, accepted for symmetry
    let scale = args.parsed::<f64>("--scale")?;
    let seed = args.parsed::<u64>("--seed")?;
    let defenses = parse_list(args.value("--defenses")?, parse_defense, &DefenseKind::ALL)?;
    let contracts = parse_list(
        args.value("--contracts")?,
        parse_contract,
        &ContractKind::ALL,
    )?;
    let sources = parse_list(args.value("--sources")?, parse_source, &[SpecSource::Pht])?;
    let no_cycle_skip = args.flag("--no-cycle-skip");
    let shard = shard_options(&mut args)?;
    let mut sink = JsonSink::open(args.value("--json")?)?;
    args.finish()?;

    let workers = shard.resolved_workers();
    eprintln!(
        "matrix: {} defenses × {} contracts × {} sources, {} shape, {workers} workers",
        defenses.len(),
        contracts.len(),
        sources.len(),
        if scale.is_some() {
            "paper-scaled"
        } else {
            "quick"
        },
    );
    println!("{}", CampaignReport::summary_header());
    for &source in &sources {
        for &defense in &defenses {
            for &contract in &contracts {
                let mut cfg = shape_config(defense, contract, scale, seed).with_source(source);
                cfg.sim.cycle_skip = !no_cycle_skip;
                let report = Campaign::new(cfg).run_sharded(shard);
                println!("{}", report.summary_row());
                sink.line(&report_json(
                    &report,
                    "sharded",
                    workers,
                    Some(shard.batch_programs),
                ))?;
            }
        }
    }
    Ok(())
}

/// `amulet boundary`: one campaign per contract in strength order, per
/// defense — the [`amulet_core::boundary`] search with a summary line per
/// defense and the deterministic JSONL table behind `--json`.
fn cmd_boundary(mut args: Args) -> Result<(), String> {
    let defenses = parse_list(args.value("--defenses")?, parse_defense, &DefenseKind::ALL)?;
    let source = match args.value("--source")? {
        Some(name) => parse_source(&name)?,
        None => SpecSource::Pht,
    };
    let scale = args.parsed::<f64>("--scale")?;
    let seed = args.parsed::<u64>("--seed")?;
    let no_cycle_skip = args.flag("--no-cycle-skip");
    let shard = shard_options(&mut args)?;
    let mut sink = JsonSink::open(args.value("--json")?)?;
    args.finish()?;

    let opts = BoundaryConfig {
        source,
        scale,
        seed,
        cycle_skip: !no_cycle_skip,
    };
    eprintln!(
        "boundary: {} defenses × {} contracts (by strength), source {source}, {} workers",
        defenses.len(),
        ContractKind::BY_STRENGTH.len(),
        shard.resolved_workers(),
    );
    let fmt = |c: Option<ContractKind>| c.map(ContractKind::name).unwrap_or("-");
    for &defense in &defenses {
        let row = boundary_row(defense, &opts, shard);
        println!(
            "{:<20} strongest satisfied: {:<8} weakest violated: {:<8} {:#018x}",
            defense.name(),
            fmt(row.strongest_satisfied()),
            fmt(row.weakest_violated()),
            row.fingerprint()
        );
        sink.line(&row.to_json())?;
    }
    Ok(())
}

/// `amulet bench`.
fn cmd_bench(mut args: Args) -> Result<(), String> {
    let programs = args.parsed::<usize>("--programs")?.unwrap_or(12);
    let seed = args.parsed::<u64>("--seed")?;
    let no_cycle_skip = args.flag("--no-cycle-skip");
    let shard = shard_options(&mut args)?;
    args.finish()?;

    let mut cfg = CampaignConfig::quick(DefenseKind::Baseline, ContractKind::CtSeq);
    cfg.programs_per_instance = programs;
    cfg.sim.cycle_skip = !no_cycle_skip;
    if let Some(seed) = seed {
        cfg.seed = seed;
    }

    let t0 = Instant::now();
    let instance_report = Campaign::new(cfg.clone()).run();
    let instance_secs = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let sharded_report = Campaign::new(cfg.clone()).run_sharded(shard);
    let sharded_secs = t0.elapsed().as_secs_f64();

    let instance_rate = instance_report.stats.cases as f64 / instance_secs.max(1e-9);
    let sharded_rate = sharded_report.stats.cases as f64 / sharded_secs.max(1e-9);
    println!(
        "instance-parallel: {} cases in {instance_secs:.3}s = {instance_rate:.0} cases/s ({} threads)",
        instance_report.stats.cases, cfg.instances
    );
    println!(
        "sharded:           {} cases in {sharded_secs:.3}s = {sharded_rate:.0} cases/s ({} workers)",
        sharded_report.stats.cases,
        shard.resolved_workers()
    );
    println!("speedup:           {:.2}x", sharded_rate / instance_rate);
    println!(
        "cycles/case:       {:.0} (warp ratio {:.3}, cycle skipping {})",
        sharded_report.cycles_per_case(),
        sharded_report.warp_ratio(),
        if no_cycle_skip { "off" } else { "on" }
    );
    Ok(())
}

/// `amulet list`.
fn cmd_list(args: Args) -> Result<(), String> {
    args.finish()?;
    println!("defenses:");
    for d in DefenseKind::ALL {
        println!("  {}", d.name());
    }
    println!("contracts:");
    for c in ContractKind::ALL {
        println!("  {}", c.name());
    }
    Ok(())
}

/// Dispatches a full argument vector (without the binary name). Returns the
/// process exit code.
pub fn run(argv: &[String]) -> i32 {
    let (sub, rest) = match argv.split_first() {
        Some((sub, rest)) => (sub.as_str(), rest),
        None => {
            eprint!("{USAGE}");
            return 2;
        }
    };
    let args = Args::new(rest);
    let result = match sub {
        "campaign" => cmd_campaign(args),
        "matrix" => cmd_matrix(args),
        "boundary" => cmd_boundary(args),
        "bench" => cmd_bench(args),
        "drive" => drive::cmd_drive(args),
        "worker" => worker::cmd_worker(args),
        "serve" => serve::cmd_serve(args),
        "submit" => serve::cmd_submit(args),
        "corpus" => serve::cmd_corpus(args),
        "list" => cmd_list(args),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown subcommand {other:?}\n\n{USAGE}")),
    };
    match result {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: {e}");
            2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amulet_core::ScanStats;
    use amulet_util::Summary;
    use std::time::Duration;

    #[test]
    fn args_flags_values_and_leftovers() {
        let raw: Vec<String> = [
            "--find-first",
            "--seed",
            "7",
            "--batch=3",
            "--defense",
            "STT",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let mut args = Args::new(&raw);
        assert!(args.flag("--find-first"));
        assert!(!args.flag("--find-first"), "flags are consumed");
        assert_eq!(args.parsed::<u64>("--seed").unwrap(), Some(7));
        assert_eq!(args.parsed::<usize>("--batch").unwrap(), Some(3));
        assert_eq!(args.value("--defense").unwrap().as_deref(), Some("STT"));
        args.finish().unwrap();

        let mut args = Args::new(&["--seed".to_string()]);
        assert!(args.value("--seed").is_err(), "dangling value flag");

        let args = Args::new(&["--bogus".to_string()]);
        assert!(args.finish().is_err(), "unknown arguments are rejected");
    }

    #[test]
    fn last_occurrence_wins() {
        let raw: Vec<String> = ["--seed=1", "--seed", "2"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let mut args = Args::new(&raw);
        assert_eq!(args.parsed::<u64>("--seed").unwrap(), Some(2));
        args.finish().unwrap();
    }

    #[test]
    fn defense_and_contract_names_round_trip() {
        for d in DefenseKind::ALL {
            assert_eq!(parse_defense(d.name()), Ok(d));
            assert_eq!(parse_defense(&d.name().to_lowercase()), Ok(d));
        }
        for c in ContractKind::ALL {
            assert_eq!(parse_contract(c.name()), Ok(c));
            assert_eq!(parse_contract(&c.name().replace('-', "")), Ok(c));
        }
        assert!(parse_defense("NoSuchDefense").is_err());
        assert!(parse_contract("CT-???").is_err());
    }

    #[test]
    fn json_escaping_and_object_building() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
        let obj = JsonObj::new()
            .str("name", "x")
            .int("n", 3)
            .bool("ok", true)
            .num("nan", f64::NAN)
            .raw("nested", "{}")
            .finish();
        assert_eq!(
            obj,
            "{\"name\":\"x\",\"n\":3,\"ok\":true,\"nan\":null,\"nested\":{}}"
        );
    }

    #[test]
    fn report_json_is_wellformed_and_complete() {
        let report = CampaignReport {
            config: CampaignConfig::quick(DefenseKind::SpecLfb, ContractKind::CtSeq),
            violations: Vec::new(),
            digests: Vec::new(),
            stats: ScanStats {
                cases: 672,
                classes: 96,
                candidates: 3,
                validation_runs: 12,
                confirmed: 0,
                sim_cycles: 134_400,
                warped_cycles: 100_800,
            },
            wall: Duration::from_millis(500),
            detection_times: Summary::new(),
            modeled_seconds: 1.5,
        };
        let json = report_json(&report, "sharded", 8, Some(4));
        for key in [
            "\"defense\":\"SpecLFB\"",
            "\"contract\":\"CT-SEQ\"",
            "\"orchestrator\":\"sharded\"",
            "\"workers\":8",
            "\"batch_programs\":4",
            "\"cases\":672",
            "\"violation\":false",
            "\"avg_detection_s\":null",
            "\"cycle_skip\":true",
            "\"sim_cycles\":134400",
            "\"cycles_per_case\":200",
            "\"warp_ratio\":0.75",
            "\"fingerprint\":\"0x",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(json.starts_with('{') && json.ends_with('}'));
        // Instance-parallel streams don't depend on a batch size — the
        // field is omitted rather than recorded as a misleading value.
        let no_batch = report_json(&report, "instances", 2, None);
        assert!(!no_batch.contains("batch_programs"));
    }

    #[test]
    fn parse_list_defaults_and_splits() {
        let all = parse_list(None, parse_defense, &DefenseKind::ALL).unwrap();
        assert_eq!(all, DefenseKind::ALL.to_vec());
        let two = parse_list(
            Some("Baseline, stt".into()),
            parse_defense,
            &DefenseKind::ALL,
        )
        .unwrap();
        assert_eq!(two, vec![DefenseKind::Baseline, DefenseKind::Stt]);
        assert!(parse_list(Some("nope".into()), parse_defense, &DefenseKind::ALL).is_err());
    }
}
