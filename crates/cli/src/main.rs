//! `amulet` binary entry point — all logic lives in [`amulet_cli`] so it is
//! unit testable.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(amulet_cli::run(&argv));
}
