//! `amulet worker` — the serving end of the multi-process campaign fabric.
//!
//! A worker resolves its campaign configuration from the same shape flags
//! as `amulet campaign` (`--defense`, `--contract`, `--scale`, `--seed`,
//! `--find-first`, `--no-cycle-skip`), announces a [`Hello`] on its
//! output, then serves `batch` assignments until `shutdown` (or EOF — a
//! vanished driver never leaves a worker behind). One session holds one
//! persistent [`UnitRuntime`], exactly like one thread of the in-process
//! pool, so a batch's results are independent of which worker ran it.
//!
//! Two transports share the same loop ([`serve_session`]):
//!
//! - **pipes** (spawned by `amulet drive --procs`): protocol on
//!   stdin/stdout, logs on stderr;
//! - **TCP** (`amulet worker --listen ADDR`): protocol on the socket,
//!   structured JSON logs on stderr — see `crate::net::serve_listener`.
//!
//! The loop is *tolerant*: a malformed or unexpected line is logged as a
//! structured `error` event and skipped (the driver recovers via its own
//! deadline), and a trailing partial line at EOF — a driver that died
//! mid-frame — ends the session cleanly instead of poisoning it.

use crate::{Args, ShapeOptions};
use amulet_core::proto::{FragmentReport, Hello, Msg};
use amulet_core::{run_batch, CampaignConfig, UnitRuntime};
use amulet_util::JsonObj;
use std::io::{BufRead, Write};
use std::time::Instant;

/// What one worker session did — returned so listeners and tests can log
/// and assert on the session shape.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SessionStats {
    /// Batches executed.
    pub batches: usize,
    /// Batches answered as skipped (past the cancel floor).
    pub skipped: usize,
    /// Heartbeats answered.
    pub pings: usize,
    /// Malformed or unexpected input lines tolerated.
    pub malformed: usize,
}

/// Serves one worker session: hello, then batch → fragment until
/// `shutdown` or EOF, answering `ping` heartbeats between batches.
/// Structured JSON log events (`worker_error`, `worker_eof_truncated`,
/// `worker_idle_timeout`) go to `log`; only an unwritable *output* is a
/// hard error (the driver is gone and taking its deadline with it).
///
/// Find-first semantics: a [`Msg::Cancel`] lowers the worker's cancel
/// floor; a later batch assignment *above* the floor is answered with a
/// skipped fragment (zero work) instead of being executed. This can never
/// change the reduced result — the floor only ever holds indices with
/// confirmed violations, so every skipped index lies strictly past the
/// final earliest hit, in the suffix the reducer discards anyway.
pub fn serve_session(
    cfg: &CampaignConfig,
    mut input: impl BufRead,
    mut out: impl Write,
    log: &mut impl Write,
) -> Result<SessionStats, String> {
    send(&mut out, &Msg::Hello(Hello::for_config(cfg)))?;
    let anchor = Instant::now();
    let mut rt = UnitRuntime::new();
    let mut cancel_floor = usize::MAX;
    let mut stats = SessionStats::default();
    let mut line = String::new();
    loop {
        line.clear();
        match input.read_line(&mut line) {
            Ok(0) => break, // EOF: driver hung up — clean exit.
            Ok(_) if !line.ends_with('\n') => {
                // A trailing partial line: the driver died mid-frame.
                // Tolerate it — the frame is unusable but the session
                // ended, which is all it means.
                log_event(log, "worker_eof_truncated", |o| {
                    o.int("bytes", line.len() as u64)
                });
                stats.malformed += 1;
                break;
            }
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // The listener's per-session idle deadline (SO_RCVTIMEO)
                // expired: end the session so the listener can accept a
                // fresh connection.
                log_event(log, "worker_idle_timeout", |o| o);
                break;
            }
            Err(e) => return Err(format!("worker: read failed: {e}")),
        }
        if line.trim().is_empty() {
            continue;
        }
        let msg = match Msg::parse_line(&line) {
            Ok(msg) => msg,
            Err(e) => {
                // Garbage on the wire (a truncated or corrupted frame).
                // Skip it — the driver's deadline, not our exit, handles
                // the lost message.
                log_event(log, "worker_error", |o| {
                    o.str("error", &e).int("line_bytes", line.len() as u64)
                });
                stats.malformed += 1;
                continue;
            }
        };
        match msg {
            Msg::Ping { token } => {
                stats.pings += 1;
                send(&mut out, &Msg::Pong { token })?;
            }
            Msg::Batch(spec) => {
                let reply = if cfg.stop_on_first && spec.index > cancel_floor {
                    stats.skipped += 1;
                    FragmentReport::skipped(spec.index)
                } else {
                    stats.batches += 1;
                    FragmentReport::from_fragment(&run_batch(cfg, &spec, anchor, &mut rt))
                };
                send(&mut out, &Msg::Fragment(reply))?;
            }
            Msg::Cancel { earliest } => cancel_floor = cancel_floor.min(earliest),
            Msg::Shutdown => break,
            other => {
                // Valid protocol, wrong direction (a hello or fragment
                // echoed back at us): log and keep serving.
                log_event(log, "worker_error", |o| {
                    o.str(
                        "error",
                        &format!("unexpected {:?} message from driver", other.tag()),
                    )
                });
                stats.malformed += 1;
            }
        }
    }
    Ok(stats)
}

/// Serves one worker session and discards the stats — the stable
/// entry point the in-memory tests and pipe transport use. Logs go to
/// stderr.
///
/// # Examples
///
/// A complete in-memory session (this is exactly what travels over the
/// pipes or sockets of a real `amulet drive` run):
///
/// ```
/// use amulet_cli::serve_worker;
/// use amulet_core::proto::Msg;
/// use amulet_core::{BatchSpec, CampaignConfig};
/// use amulet_contracts::ContractKind;
/// use amulet_defenses::DefenseKind;
///
/// let mut cfg = CampaignConfig::quick(DefenseKind::Baseline, ContractKind::CtSeq);
/// cfg.programs_per_instance = 1;
/// let spec = BatchSpec { index: 0, instance: 0, batch: 0, programs: 1 };
/// let script = format!("{}\n{}\n", Msg::Batch(spec).to_line(), Msg::Shutdown.to_line());
/// let mut out = Vec::new();
/// serve_worker(&cfg, script.as_bytes(), &mut out).unwrap();
/// let lines: Vec<Msg> = String::from_utf8(out)
///     .unwrap()
///     .lines()
///     .map(|l| Msg::parse_line(l).unwrap())
///     .collect();
/// assert!(matches!(lines[0], Msg::Hello(_)));
/// assert!(matches!(&lines[1], Msg::Fragment(f) if f.index == 0 && !f.skipped));
/// ```
pub fn serve_worker(
    cfg: &CampaignConfig,
    input: impl BufRead,
    out: impl Write,
) -> Result<(), String> {
    serve_session(cfg, input, out, &mut std::io::stderr()).map(|_| ())
}

/// Writes one protocol line and flushes — every message must reach the
/// driver promptly; the link is the scheduler's critical path.
fn send(out: &mut impl Write, msg: &Msg) -> Result<(), String> {
    writeln!(out, "{}", msg.to_line())
        .and_then(|()| out.flush())
        .map_err(|e| format!("worker: write failed: {e}"))
}

/// One structured JSON log line (best-effort — logging must never take a
/// session down).
fn log_event(log: &mut impl Write, event: &str, detail: impl FnOnce(JsonObj) -> JsonObj) {
    let line = detail(JsonObj::new().str("event", event)).finish();
    let _ = writeln!(log, "{line}");
    let _ = log.flush();
}

/// `amulet worker`.
pub(crate) fn cmd_worker(mut args: Args) -> Result<(), String> {
    let shape = ShapeOptions::parse(&mut args)?;
    let listen = args.value("--listen")?;
    let sessions = args.parsed::<usize>("--sessions")?.unwrap_or(0);
    let idle_s = args.parsed::<f64>("--idle-timeout-s")?;
    args.finish()?;
    let cfg = shape.config();
    match listen {
        Some(addr) => {
            eprintln!(
                "worker {}: listening on {addr}, serving {} × {} (seed {})",
                std::process::id(),
                shape.defense.name(),
                shape.contract.name(),
                cfg.seed
            );
            let idle_timeout = match idle_s {
                None => None,
                Some(s) if s.is_finite() && s > 0.0 => Some(std::time::Duration::from_secs_f64(s)),
                Some(_) => {
                    return Err("--idle-timeout-s: expected a positive number of seconds".into())
                }
            };
            crate::net::serve_listener(
                &cfg,
                &crate::net::ListenConfig {
                    addr,
                    sessions,
                    idle_timeout,
                },
            )
        }
        None => {
            if sessions != 0 || idle_s.is_some() {
                return Err("--sessions/--idle-timeout-s require --listen".into());
            }
            eprintln!(
                "worker {}: serving {} × {} (seed {})",
                std::process::id(),
                shape.defense.name(),
                shape.contract.name(),
                cfg.seed
            );
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            serve_worker(&cfg, stdin.lock(), stdout.lock())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amulet_contracts::ContractKind;
    use amulet_core::BatchSpec;
    use amulet_defenses::DefenseKind;

    fn session_raw(cfg: &CampaignConfig, input: &str) -> (Vec<Msg>, SessionStats, String) {
        let mut out = Vec::new();
        let mut log = Vec::new();
        let stats = serve_session(cfg, input.as_bytes(), &mut out, &mut log).unwrap();
        let replies = String::from_utf8(out)
            .unwrap()
            .lines()
            .map(|l| Msg::parse_line(l).unwrap())
            .collect();
        (replies, stats, String::from_utf8(log).unwrap())
    }

    fn session(cfg: &CampaignConfig, script: &[Msg]) -> Vec<Msg> {
        let input: String = script
            .iter()
            .map(|m| format!("{}\n", m.to_line()))
            .collect();
        session_raw(cfg, &input).0
    }

    #[test]
    fn worker_answers_batches_and_stops_on_shutdown() {
        let mut cfg = CampaignConfig::quick(DefenseKind::Baseline, ContractKind::CtSeq);
        cfg.instances = 1;
        cfg.programs_per_instance = 2;
        let spec = |index| BatchSpec {
            index,
            instance: 0,
            batch: index,
            programs: 1,
        };
        let replies = session(
            &cfg,
            &[Msg::Batch(spec(0)), Msg::Batch(spec(1)), Msg::Shutdown],
        );
        assert_eq!(replies.len(), 3, "hello + two fragments");
        let Msg::Hello(h) = &replies[0] else {
            panic!("first message must be hello");
        };
        assert!(h.check(&cfg).is_ok());
        for (i, reply) in replies[1..].iter().enumerate() {
            let Msg::Fragment(f) = reply else {
                panic!("expected fragment")
            };
            assert_eq!(f.index, i);
            assert!(!f.skipped);
            assert!(f.stats.cases > 0);
        }
    }

    #[test]
    fn pings_are_answered_with_matching_pongs() {
        let cfg = CampaignConfig::quick(DefenseKind::Baseline, ContractKind::CtSeq);
        let replies = session(
            &cfg,
            &[
                Msg::Ping { token: 41 },
                Msg::Ping { token: u64::MAX },
                Msg::Shutdown,
            ],
        );
        assert!(matches!(replies[1], Msg::Pong { token: 41 }));
        assert!(matches!(replies[2], Msg::Pong { token: u64::MAX }));
    }

    #[test]
    fn cancel_floor_skips_later_batches_in_find_first_mode() {
        let mut cfg = CampaignConfig::quick(DefenseKind::Baseline, ContractKind::CtSeq);
        cfg.instances = 1;
        cfg.programs_per_instance = 8;
        cfg.stop_on_first = true;
        let spec = |index| BatchSpec {
            index,
            instance: 0,
            batch: index,
            programs: 1,
        };
        let replies = session(
            &cfg,
            &[
                Msg::Cancel { earliest: 2 },
                Msg::Batch(spec(2)), // at the floor: executes
                Msg::Batch(spec(5)), // past the floor: skipped
                Msg::Shutdown,
            ],
        );
        let Msg::Fragment(at_floor) = &replies[1] else {
            panic!()
        };
        let Msg::Fragment(past) = &replies[2] else {
            panic!()
        };
        assert!(!at_floor.skipped && at_floor.stats.cases > 0);
        assert!(past.skipped && past.stats.cases == 0);
    }

    #[test]
    fn eof_without_shutdown_is_a_clean_exit() {
        let cfg = CampaignConfig::quick(DefenseKind::Baseline, ContractKind::CtSeq);
        let (replies, stats, _) = session_raw(&cfg, "");
        assert!(matches!(replies[0], Msg::Hello(_)));
        assert_eq!(stats, SessionStats::default());
    }

    /// The malformed-input satellite: garbage and wrong-direction lines
    /// are logged as structured `worker_error` events and skipped, and a
    /// trailing partial line at EOF ends the session cleanly — the worker
    /// keeps serving through everything else.
    #[test]
    fn malformed_lines_are_logged_and_tolerated() {
        let mut cfg = CampaignConfig::quick(DefenseKind::Baseline, ContractKind::CtSeq);
        cfg.instances = 1;
        cfg.programs_per_instance = 1;
        let spec = BatchSpec {
            index: 0,
            instance: 0,
            batch: 0,
            programs: 1,
        };
        let input = format!(
            "this is not json\n{}\n{}\n{}",
            Msg::Pong { token: 9 }.to_line(), // wrong direction
            Msg::Batch(spec).to_line(),
            r#"{"type":"shutdo"# // truncated partial line, no newline
        );
        let (replies, stats, log) = session_raw(&cfg, &input);
        assert!(matches!(replies[0], Msg::Hello(_)));
        assert!(
            matches!(&replies[1], Msg::Fragment(f) if f.index == 0 && !f.skipped),
            "the batch after the garbage still executed"
        );
        assert_eq!(stats.batches, 1);
        assert_eq!(
            stats.malformed, 3,
            "garbage + wrong direction + truncated tail"
        );
        assert_eq!(
            log.matches("\"event\":\"worker_error\"").count(),
            2,
            "{log}"
        );
        assert_eq!(
            log.matches("\"event\":\"worker_eof_truncated\"").count(),
            1,
            "{log}"
        );
        for line in log.lines() {
            amulet_util::parse_json(line).expect("log lines are valid JSON");
        }
    }
}
