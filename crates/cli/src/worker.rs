//! `amulet worker` — the child end of the multi-process campaign fabric.
//!
//! A worker resolves its campaign configuration from the same shape flags
//! as `amulet campaign` (`--defense`, `--contract`, `--scale`, `--seed`,
//! `--find-first`, `--no-cycle-skip`), announces a [`Hello`] on stdout,
//! then serves
//! `batch` assignments from stdin until `shutdown` (or EOF — a vanished
//! driver never leaves a worker behind). One process holds one persistent
//! [`UnitRuntime`], exactly like one thread of the in-process pool, so a
//! batch's results are independent of which process ran it.
//!
//! Stdout carries *only* protocol lines; human-readable logging goes to
//! stderr. The loop itself ([`serve_worker`]) is generic over its streams,
//! which is how `tests/multiproc_determinism.rs` drives whole worker
//! sessions in memory.

use crate::{Args, ShapeOptions};
use amulet_core::proto::{FragmentReport, Hello, Msg};
use amulet_core::{run_batch, CampaignConfig, UnitRuntime};
use std::io::{BufRead, Write};
use std::time::Instant;

/// Serves one worker session: hello, then batch → fragment until
/// `shutdown` or EOF.
///
/// Find-first semantics: a [`Msg::Cancel`] lowers the worker's cancel
/// floor; a later batch assignment *above* the floor is answered with a
/// skipped fragment (zero work) instead of being executed. This can never
/// change the reduced result — the floor only ever holds indices with
/// confirmed violations, so every skipped index lies strictly past the
/// final earliest hit, in the suffix the reducer discards anyway.
///
/// # Examples
///
/// A complete in-memory session (this is exactly what travels over the
/// pipes of a real `amulet drive` run):
///
/// ```
/// use amulet_cli::serve_worker;
/// use amulet_core::proto::Msg;
/// use amulet_core::{BatchSpec, CampaignConfig};
/// use amulet_contracts::ContractKind;
/// use amulet_defenses::DefenseKind;
///
/// let mut cfg = CampaignConfig::quick(DefenseKind::Baseline, ContractKind::CtSeq);
/// cfg.programs_per_instance = 1;
/// let spec = BatchSpec { index: 0, instance: 0, batch: 0, programs: 1 };
/// let script = format!("{}\n{}\n", Msg::Batch(spec).to_line(), Msg::Shutdown.to_line());
/// let mut out = Vec::new();
/// serve_worker(&cfg, script.as_bytes(), &mut out).unwrap();
/// let lines: Vec<Msg> = String::from_utf8(out)
///     .unwrap()
///     .lines()
///     .map(|l| Msg::parse_line(l).unwrap())
///     .collect();
/// assert!(matches!(lines[0], Msg::Hello(_)));
/// assert!(matches!(&lines[1], Msg::Fragment(f) if f.index == 0 && !f.skipped));
/// ```
pub fn serve_worker(
    cfg: &CampaignConfig,
    input: impl BufRead,
    mut out: impl Write,
) -> Result<(), String> {
    send(&mut out, &Msg::Hello(Hello::for_config(cfg)))?;
    let anchor = Instant::now();
    let mut rt = UnitRuntime::new();
    let mut cancel_floor = usize::MAX;
    for line in input.lines() {
        let line = line.map_err(|e| format!("worker: read failed: {e}"))?;
        if line.trim().is_empty() {
            continue;
        }
        match Msg::parse_line(&line)? {
            Msg::Batch(spec) => {
                let reply = if cfg.stop_on_first && spec.index > cancel_floor {
                    FragmentReport::skipped(spec.index)
                } else {
                    FragmentReport::from_fragment(&run_batch(cfg, &spec, anchor, &mut rt))
                };
                send(&mut out, &Msg::Fragment(reply))?;
            }
            Msg::Cancel { earliest } => cancel_floor = cancel_floor.min(earliest),
            Msg::Shutdown => break,
            other => {
                return Err(format!(
                    "worker: unexpected {:?} message from driver",
                    other.tag()
                ))
            }
        }
    }
    Ok(())
}

/// Writes one protocol line and flushes — every message must reach the
/// driver promptly; the pipe is the scheduler's critical path.
fn send(out: &mut impl Write, msg: &Msg) -> Result<(), String> {
    writeln!(out, "{}", msg.to_line())
        .and_then(|()| out.flush())
        .map_err(|e| format!("worker: write failed: {e}"))
}

/// `amulet worker`.
pub(crate) fn cmd_worker(mut args: Args) -> Result<(), String> {
    let shape = ShapeOptions::parse(&mut args)?;
    args.finish()?;
    let cfg = shape.config();
    eprintln!(
        "worker {}: serving {} × {} (seed {})",
        std::process::id(),
        shape.defense.name(),
        shape.contract.name(),
        cfg.seed
    );
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    serve_worker(&cfg, stdin.lock(), stdout.lock())
}

#[cfg(test)]
mod tests {
    use super::*;
    use amulet_contracts::ContractKind;
    use amulet_core::BatchSpec;
    use amulet_defenses::DefenseKind;

    fn session(cfg: &CampaignConfig, script: &[Msg]) -> Vec<Msg> {
        let input: String = script
            .iter()
            .map(|m| format!("{}\n", m.to_line()))
            .collect();
        let mut out = Vec::new();
        serve_worker(cfg, input.as_bytes(), &mut out).unwrap();
        String::from_utf8(out)
            .unwrap()
            .lines()
            .map(|l| Msg::parse_line(l).unwrap())
            .collect()
    }

    #[test]
    fn worker_answers_batches_and_stops_on_shutdown() {
        let mut cfg = CampaignConfig::quick(DefenseKind::Baseline, ContractKind::CtSeq);
        cfg.instances = 1;
        cfg.programs_per_instance = 2;
        let spec = |index| BatchSpec {
            index,
            instance: 0,
            batch: index,
            programs: 1,
        };
        let replies = session(
            &cfg,
            &[Msg::Batch(spec(0)), Msg::Batch(spec(1)), Msg::Shutdown],
        );
        assert_eq!(replies.len(), 3, "hello + two fragments");
        let Msg::Hello(h) = &replies[0] else {
            panic!("first message must be hello");
        };
        assert!(h.check(&cfg).is_ok());
        for (i, reply) in replies[1..].iter().enumerate() {
            let Msg::Fragment(f) = reply else {
                panic!("expected fragment")
            };
            assert_eq!(f.index, i);
            assert!(!f.skipped);
            assert!(f.stats.cases > 0);
        }
    }

    #[test]
    fn cancel_floor_skips_later_batches_in_find_first_mode() {
        let mut cfg = CampaignConfig::quick(DefenseKind::Baseline, ContractKind::CtSeq);
        cfg.instances = 1;
        cfg.programs_per_instance = 8;
        cfg.stop_on_first = true;
        let spec = |index| BatchSpec {
            index,
            instance: 0,
            batch: index,
            programs: 1,
        };
        let replies = session(
            &cfg,
            &[
                Msg::Cancel { earliest: 2 },
                Msg::Batch(spec(2)), // at the floor: executes
                Msg::Batch(spec(5)), // past the floor: skipped
                Msg::Shutdown,
            ],
        );
        let Msg::Fragment(at_floor) = &replies[1] else {
            panic!()
        };
        let Msg::Fragment(past) = &replies[2] else {
            panic!()
        };
        assert!(!at_floor.skipped && at_floor.stats.cases > 0);
        assert!(past.skipped && past.stats.cases == 0);
    }

    #[test]
    fn eof_without_shutdown_is_a_clean_exit() {
        let cfg = CampaignConfig::quick(DefenseKind::Baseline, ContractKind::CtSeq);
        let mut out = Vec::new();
        serve_worker(&cfg, &b""[..], &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(matches!(
            Msg::parse_line(text.lines().next().unwrap()).unwrap(),
            Msg::Hello(_)
        ));
    }
}
