//! `amulet serve` — the long-lived campaign service, plus the `amulet
//! submit` client and the `amulet corpus` query tool.
//!
//! The daemon glues three loops to one shared [`Service`]:
//!
//! - **client handlers** ([`serve_client`]): one per accepted connection,
//!   speaking the protocol-v4 service messages (`submit`/`accepted`/
//!   `recovering`/`progress`/`result`/`cancel_campaign`) as JSONL over the
//!   socket;
//! - **local workers** ([`ServiceHost`]): in-process threads executing
//!   leased batches with per-campaign persistent runtimes;
//! - **TCP slots**: one thread per `--connect` address, forwarding leases
//!   to remote `amulet worker --listen` processes over the PR 6 link
//!   layer, with the same strike/backoff/quarantine ladder as `drive`.
//!
//! With `--state-dir DIR`, the daemon is crash-safe: a startup recovery
//! pass (`StateDir::recover`) reloads the persisted result cache and
//! clears stale journals, and every campaign is write-ahead journaled so
//! a killed daemon resumes interrupted work batch-granularly on restart —
//! the client sees a `recovering` note and a fingerprint-identical result.
//!
//! Scheduling fairness, the result cache and corpus persistence live in
//! `amulet_core::service`; this module is transport and process glue —
//! which is why the service determinism suite (`tests/serve_session.rs`)
//! can drive [`serve_client`] over in-memory pipes and prove the same
//! properties the real-socket tests prove end-to-end.

use crate::net::{parse_connect_list, TcpLink};
use crate::{Args, JsonSink, ShapeOptions, WorkerLink};
use amulet_core::proto::{CampaignSpec, Msg, ResultMsg};
use amulet_core::{
    run_batch, BatchSpec, Corpus, Fragment, LeaseWait, Service, ServiceEvent, ShardConfig,
    StateDir, SubmitOutcome, UnitRuntime,
};
use amulet_util::{JsonObj, Xoshiro256};
use std::collections::{HashMap, HashSet};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, RecvTimeoutError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long a worker loop waits for a lease before housekeeping (runtime
/// garbage collection, shutdown checks).
const LEASE_POLL: Duration = Duration::from_millis(250);
/// Handshake/heartbeat deadline for TCP slots (as `drive`'s default).
const LIVENESS: Duration = Duration::from_secs(10);
/// Per-batch fragment deadline for TCP slots (as `drive`'s default).
const BATCH_TIMEOUT: Duration = Duration::from_secs(120);
/// First reconnect delay for a failing TCP slot; doubles per strike.
const BACKOFF_BASE: Duration = Duration::from_millis(50);
/// Upper bound on the reconnect delay.
const BACKOFF_MAX: Duration = Duration::from_secs(2);
/// Consecutive failures before a TCP slot retires (quarantine).
const QUARANTINE_AFTER: usize = 3;

/// The service plus its worker threads. [`ServiceHost::shutdown`] drains
/// and joins them; dropping without shutdown leaves daemon threads running
/// (they exit at the next poll once the service is shut down elsewhere).
pub struct ServiceHost {
    service: Arc<Service>,
    threads: Vec<JoinHandle<()>>,
}

impl ServiceHost {
    /// Starts `local_workers` in-process workers and one TCP slot per
    /// `connect` address, all leasing from `service`.
    pub fn start(service: Arc<Service>, local_workers: usize, connect: &[String]) -> Self {
        let mut host = ServiceHost {
            service,
            threads: Vec::new(),
        };
        host.add_local_workers(local_workers);
        for addr in connect {
            let service = host.service.clone();
            let addr = addr.clone();
            host.threads
                .push(std::thread::spawn(move || tcp_slot(&service, &addr)));
        }
        host
    }

    /// Adds more local workers to a running host (tests use this to pin
    /// down scheduling orders: submit first, attach workers second).
    pub fn add_local_workers(&mut self, n: usize) {
        for _ in 0..n {
            let service = self.service.clone();
            self.threads
                .push(std::thread::spawn(move || local_worker(&service)));
        }
    }

    /// The shared service.
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// Shuts the service down and joins every worker thread.
    pub fn shutdown(self) {
        self.service.shutdown();
        for t in self.threads {
            let _ = t.join();
        }
    }
}

/// An in-process worker loop: lease, execute, complete. Runtimes are
/// per-campaign (a [`UnitRuntime`] must never serve two configs) and are
/// garbage-collected when their campaign leaves the active set.
fn local_worker(service: &Service) {
    let mut runtimes: HashMap<u64, UnitRuntime> = HashMap::new();
    loop {
        match service.wait_lease(LEASE_POLL) {
            LeaseWait::Shutdown => return,
            LeaseWait::Idle => runtimes.retain(|id, _| service.is_active(*id)),
            LeaseWait::Lease(lease) => {
                let rt = runtimes.entry(lease.campaign).or_default();
                let fragment = run_batch(&lease.cfg, &lease.spec, lease.anchor, rt);
                service.complete(*lease, fragment);
            }
        }
    }
}

/// Why a TCP connection attempt could not serve a lease.
enum SlotError {
    /// The worker answered the handshake but for a different campaign
    /// (config mismatch) — it will never serve this campaign.
    Incompatible(String),
    /// Transport trouble — retry with backoff, quarantine eventually.
    Transient(String),
}

/// Connects to `addr` and completes the hello handshake against the
/// leased campaign's config.
fn connect_for(addr: &str, cfg: &amulet_core::CampaignConfig) -> Result<TcpLink, SlotError> {
    let mut link = TcpLink::connect(addr, LIVENESS).map_err(SlotError::Transient)?;
    match link.recv_timeout(LIVENESS) {
        Ok(Some(Msg::Hello(hello))) => hello.check(cfg).map_err(SlotError::Incompatible)?,
        Ok(Some(other)) => {
            return Err(SlotError::Transient(format!(
                "expected hello, got {:?}",
                other.tag()
            )))
        }
        Ok(None) => {
            return Err(SlotError::Transient(format!(
                "handshake timed out after {LIVENESS:?}"
            )))
        }
        Err(e) => return Err(SlotError::Transient(e)),
    }
    Ok(link)
}

/// One batch over a live worker session: heartbeat, assign, await the
/// fragment. A skipped fragment is an error — the service never sends
/// cancel floors to TCP workers, so a skip means a confused peer.
fn tcp_call(link: &mut TcpLink, spec: &BatchSpec, token: u64) -> Result<Fragment, String> {
    link.send(&Msg::Ping { token })?;
    match link.recv_timeout(LIVENESS)? {
        Some(Msg::Pong { token: t }) if t == token => {}
        Some(other) => return Err(format!("expected pong, got {:?}", other.tag())),
        None => return Err(format!("heartbeat timed out after {LIVENESS:?}")),
    }
    link.send(&Msg::Batch(*spec))?;
    match link.recv_timeout(BATCH_TIMEOUT)? {
        Some(Msg::Fragment(reply)) if reply.index == spec.index && !reply.skipped => {
            Ok(reply.into_fragment())
        }
        Some(Msg::Fragment(reply)) => Err(format!(
            "unusable fragment for batch {} (index {}, skipped {})",
            spec.index, reply.index, reply.skipped
        )),
        Some(other) => Err(format!("expected fragment, got {:?}", other.tag())),
        None => Err(format!(
            "batch {} timed out after {BATCH_TIMEOUT:?}",
            spec.index
        )),
    }
}

/// A TCP worker slot: forwards leases to one remote `amulet worker
/// --listen` process. Sessions are per-campaign (a remote worker's
/// persistent runtime must not mix campaigns); campaigns whose config the
/// worker rejects are remembered and skipped; transport failures release
/// the lease for other workers and climb a strike ladder to quarantine.
fn tcp_slot(service: &Service, addr: &str) {
    let mut incompatible: HashSet<u64> = HashSet::new();
    let mut session: Option<(u64, TcpLink)> = None;
    let mut strikes = 0usize;
    let mut token = 0u64;
    let teardown = |session: &mut Option<(u64, TcpLink)>| {
        if let Some((_, mut link)) = session.take() {
            let _ = link.send(&Msg::Shutdown);
        }
    };
    loop {
        let lease = match service.wait_lease_where(LEASE_POLL, |id| !incompatible.contains(&id)) {
            LeaseWait::Shutdown => {
                teardown(&mut session);
                return;
            }
            LeaseWait::Idle => {
                incompatible.retain(|id| service.is_active(*id));
                if session
                    .as_ref()
                    .is_some_and(|(id, _)| !service.is_active(*id))
                {
                    teardown(&mut session);
                }
                continue;
            }
            LeaseWait::Lease(lease) => lease,
        };
        if session
            .as_ref()
            .is_some_and(|(id, _)| *id != lease.campaign)
        {
            teardown(&mut session);
        }
        if session.is_none() {
            match connect_for(addr, &lease.cfg) {
                Ok(link) => session = Some((lease.campaign, link)),
                Err(SlotError::Incompatible(e)) => {
                    eprintln!(
                        "tcp worker {addr}: campaign {} incompatible: {e}",
                        lease.campaign
                    );
                    incompatible.insert(lease.campaign);
                    service.release(*lease);
                    continue;
                }
                Err(SlotError::Transient(e)) => {
                    service.release(*lease);
                    strikes += 1;
                    if strikes >= QUARANTINE_AFTER {
                        eprintln!("tcp worker {addr}: quarantined after {strikes} failures ({e})");
                        return;
                    }
                    std::thread::sleep(backoff(strikes));
                    continue;
                }
            }
        }
        let (_, link) = session.as_mut().expect("session established above");
        token = token.wrapping_add(1);
        match tcp_call(link, &lease.spec, token) {
            Ok(fragment) => {
                strikes = 0;
                service.complete(*lease, fragment);
            }
            Err(e) => {
                // The batch was not completed — tear the session down (it
                // may hold a half-finished exchange) and give the batch
                // back for any worker to adopt.
                session = None;
                service.release(*lease);
                strikes += 1;
                if strikes >= QUARANTINE_AFTER {
                    eprintln!("tcp worker {addr}: quarantined after {strikes} failures ({e})");
                    return;
                }
                std::thread::sleep(backoff(strikes));
            }
        }
    }
}

fn backoff(strikes: usize) -> Duration {
    BACKOFF_BASE
        .saturating_mul(1u32 << (strikes.min(16) as u32).saturating_sub(1))
        .min(BACKOFF_MAX)
}

/// Counters from one client conversation.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ClientStats {
    /// `submit` messages accepted (cache hits included).
    pub submitted: usize,
    /// Submits answered straight from the result cache.
    pub cache_hits: usize,
    /// Terminal `result` messages delivered.
    pub results: usize,
    /// `cancel_campaign` messages processed.
    pub cancelled: usize,
    /// Lines that were not valid protocol messages.
    pub malformed: usize,
}

/// Serves one client conversation: reads protocol-v3 JSONL from `input`,
/// writes `accepted`/`progress`/`result` lines to `out`, and returns when
/// the client disconnects and every campaign it owned has resolved.
///
/// Campaigns still active when the client goes away are cancelled — a
/// result nobody will read is not worth worker time. Submit errors are
/// answered with an error `result` under campaign id `u64::MAX` (no id
/// was ever assigned).
pub fn serve_client<R, W>(
    service: &Arc<Service>,
    input: R,
    mut out: W,
) -> Result<ClientStats, String>
where
    R: BufRead + Send + 'static,
    W: Write,
{
    // Subscribe before the first submit can possibly resolve, so no event
    // for an owned campaign is ever missed.
    let events = service.subscribe();
    let (tx, lines) = channel();
    std::thread::spawn(move || {
        for line in input.lines() {
            if tx.send(line).is_err() {
                return;
            }
        }
    });

    let mut stats = ClientStats::default();
    let mut owned: HashSet<u64> = HashSet::new();
    let mut open = true;
    let result = (|| -> Result<(), String> {
        let send = |out: &mut W, msg: &Msg| -> Result<(), String> {
            writeln!(out, "{}", msg.to_line())
                .and_then(|()| out.flush())
                .map_err(|e| format!("client write failed: {e}"))
        };
        while open || !owned.is_empty() {
            match lines.recv_timeout(Duration::from_millis(20)) {
                Ok(Ok(line)) if line.trim().is_empty() => {}
                Ok(Ok(line)) => match Msg::parse_line(&line) {
                    Ok(Msg::Submit(spec)) => match service.submit(&spec) {
                        Ok(SubmitOutcome::Accepted {
                            campaign,
                            total_batches,
                            recovered,
                        }) => {
                            stats.submitted += 1;
                            owned.insert(campaign);
                            send(
                                &mut out,
                                &Msg::Accepted {
                                    campaign,
                                    cached: false,
                                },
                            )?;
                            if recovered > 0 {
                                send(
                                    &mut out,
                                    &Msg::Recovering {
                                        campaign,
                                        recovered,
                                        total: total_batches,
                                    },
                                )?;
                            }
                        }
                        Ok(SubmitOutcome::Cached { campaign, result }) => {
                            stats.submitted += 1;
                            stats.cache_hits += 1;
                            stats.results += 1;
                            send(
                                &mut out,
                                &Msg::Accepted {
                                    campaign,
                                    cached: true,
                                },
                            )?;
                            send(&mut out, &Msg::CampaignResult(*result))?;
                        }
                        Err(e) => {
                            send(
                                &mut out,
                                &Msg::CampaignResult(ResultMsg {
                                    campaign: u64::MAX,
                                    cached: false,
                                    cancelled: false,
                                    executed_batches: 0,
                                    report: None,
                                    error: Some(e),
                                }),
                            )?;
                        }
                    },
                    Ok(Msg::CancelCampaign { campaign }) => {
                        stats.cancelled += 1;
                        service.cancel(campaign);
                    }
                    Ok(other) => {
                        stats.malformed += 1;
                        eprintln!("client sent unexpected {:?}", other.tag());
                    }
                    Err(e) => {
                        stats.malformed += 1;
                        eprintln!("client sent malformed line: {e}");
                    }
                },
                Ok(Err(e)) => {
                    return Err(format!("client read failed: {e}"));
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => open = false,
            }
            loop {
                match events.try_recv() {
                    Ok(ServiceEvent::Progress {
                        campaign,
                        done,
                        total,
                        cases,
                    }) if owned.contains(&campaign) => send(
                        &mut out,
                        &Msg::Progress {
                            campaign,
                            done,
                            total,
                            cases,
                        },
                    )?,
                    Ok(ServiceEvent::Finished { campaign }) if owned.contains(&campaign) => {
                        if let Some(result) = service.take_result(campaign) {
                            stats.results += 1;
                            owned.remove(&campaign);
                            send(&mut out, &Msg::CampaignResult(result))?;
                        }
                    }
                    Ok(_) => {}
                    Err(_) => break,
                }
            }
        }
        Ok(())
    })();
    // Whatever ended the conversation, never leave orphaned campaigns
    // burning worker time for a client that will not read the result.
    for id in owned.drain() {
        service.cancel(id);
        let _ = service.take_result(id);
    }
    result.map(|()| stats)
}

/// `amulet serve`.
pub(crate) fn cmd_serve(mut args: Args) -> Result<(), String> {
    let listen_addr = args
        .value("--listen")?
        .ok_or("serve: --listen ADDR is required")?;
    let workers = args.parsed::<usize>("--workers")?.unwrap_or(1);
    let connect = match args.value("--connect")? {
        Some(list) => parse_connect_list(&list)?,
        None => Vec::new(),
    };
    let corpus = args.value("--corpus")?.map(Corpus::open);
    let state = args.value("--state-dir")?.map(StateDir::open).transpose()?;
    let sessions = args.parsed::<usize>("--sessions")?.unwrap_or(0);
    args.finish()?;
    if workers == 0 && connect.is_empty() {
        return Err("serve: need at least one worker (--workers N or --connect LIST)".into());
    }

    let listener =
        TcpListener::bind(&listen_addr).map_err(|e| format!("cannot bind {listen_addr}: {e}"))?;
    let local = listener
        .local_addr()
        .map_err(|e| format!("cannot read bound address: {e}"))?;
    eprintln!(
        "{}",
        JsonObj::new()
            .str("event", "serving")
            .str("addr", &local.to_string())
            .int("pid", u64::from(std::process::id()))
            .int("workers", workers as u64)
            .int("tcp_slots", connect.len() as u64)
            .finish()
    );

    let service = Arc::new(match state {
        Some(state) => {
            // The startup recovery pass: reload the persisted result cache,
            // clear journals whose campaign already completed, and announce
            // what a resubmit could resume.
            let recovery = state.recover()?;
            eprintln!(
                "{}",
                JsonObj::new()
                    .str("event", "recovery")
                    .str("state_dir", &state.path().display().to_string())
                    .int("cached", recovery.cache.len() as u64)
                    .int("resumable", recovery.resumable as u64)
                    .int("cleared", recovery.cleared as u64)
                    .int("corrupt", recovery.corrupt as u64)
                    .finish()
            );
            Service::with_persistence(corpus, state, recovery)
        }
        None => Service::with_corpus(corpus),
    });
    let host = ServiceHost::start(service.clone(), workers, &connect);
    let session_seq = AtomicU64::new(0);
    let mut handlers = Vec::new();
    let mut served = 0usize;
    loop {
        let (stream, peer) = listener
            .accept()
            .map_err(|e| format!("accept failed: {e}"))?;
        let _ = stream.set_nodelay(true);
        let session = session_seq.fetch_add(1, Ordering::Relaxed);
        eprintln!(
            "{}",
            JsonObj::new()
                .str("event", "session_start")
                .int("session", session)
                .str("peer", &peer.to_string())
                .finish()
        );
        let service = service.clone();
        handlers.push(std::thread::spawn(move || {
            let reader = match stream.try_clone() {
                Ok(s) => BufReader::new(s),
                Err(e) => {
                    eprintln!("cannot clone client stream: {e}");
                    return;
                }
            };
            match serve_client(&service, reader, &stream) {
                Ok(stats) => eprintln!(
                    "{}",
                    JsonObj::new()
                        .str("event", "session_end")
                        .int("session", session)
                        .int("submitted", stats.submitted as u64)
                        .int("cache_hits", stats.cache_hits as u64)
                        .int("results", stats.results as u64)
                        .int("cancelled", stats.cancelled as u64)
                        .int("malformed", stats.malformed as u64)
                        .finish()
                ),
                Err(e) => eprintln!(
                    "{}",
                    JsonObj::new()
                        .str("event", "session_error")
                        .int("session", session)
                        .str("error", &e)
                        .finish()
                ),
            }
        }));
        served += 1;
        if sessions != 0 && served >= sessions {
            break;
        }
    }
    for h in handlers {
        let _ = h.join();
    }
    host.shutdown();
    Ok(())
}

/// Why one `amulet submit` attempt failed.
enum SubmitFailure {
    /// The service answered: the campaign itself failed or was cancelled.
    /// Retrying cannot change the outcome.
    Fatal(String),
    /// Transport trouble (connect refused, connection lost mid-campaign) —
    /// a resubmit converges on the same fingerprint, because the service
    /// answers a repeat submit from its cache or resumes its journal.
    Transient(String),
}

/// One connect → submit → await-result conversation.
fn submit_attempt(
    addr: &str,
    spec: &CampaignSpec,
    deadline: Instant,
    sink: &mut JsonSink,
) -> Result<(), SubmitFailure> {
    let mut link =
        TcpLink::connect(addr, Duration::from_secs(10)).map_err(SubmitFailure::Transient)?;
    link.send(&Msg::Submit(spec.clone()))
        .map_err(SubmitFailure::Transient)?;
    loop {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(SubmitFailure::Fatal("submit: deadline exhausted".into()));
        }
        match link
            .recv_timeout(remaining)
            .map_err(SubmitFailure::Transient)?
        {
            None => return Err(SubmitFailure::Fatal("submit: deadline exhausted".into())),
            Some(Msg::Accepted { campaign, cached }) => {
                eprintln!("campaign {campaign} accepted (cached: {cached})");
            }
            Some(Msg::Recovering {
                campaign,
                recovered,
                total,
            }) => {
                eprintln!(
                    "campaign {campaign}: resuming from journal, \
                     {recovered}/{total} batches already on disk"
                );
            }
            Some(Msg::Progress {
                campaign,
                done,
                total,
                cases,
            }) => {
                eprintln!("campaign {campaign}: {done}/{total} batches, {cases} cases");
            }
            Some(Msg::CampaignResult(r)) => {
                if let Some(e) = r.error {
                    return Err(SubmitFailure::Fatal(format!("campaign failed: {e}")));
                }
                if r.cancelled {
                    return Err(SubmitFailure::Fatal(format!(
                        "campaign {} was cancelled",
                        r.campaign
                    )));
                }
                let rep = r
                    .report
                    .ok_or_else(|| SubmitFailure::Fatal("result carried no report".into()))?;
                let line = JsonObj::new()
                    .int("campaign", r.campaign)
                    .bool("cached", r.cached)
                    .int("executed_batches", r.executed_batches)
                    .str("defense", &rep.defense)
                    .str("contract", &rep.contract)
                    .str("seed", &rep.seed.to_string())
                    .int("cases", rep.stats.cases as u64)
                    .int("confirmed", rep.stats.confirmed as u64)
                    .bool("violation", !rep.digests.is_empty())
                    .str("fingerprint", &format!("{:#018x}", rep.fingerprint()))
                    .finish();
                println!("{line}");
                // `--json -` already printed above; only duplicate into a
                // real file sink.
                if !matches!(sink, JsonSink::Stdout) {
                    sink.line(&line).map_err(SubmitFailure::Fatal)?;
                }
                return Ok(());
            }
            Some(other) => {
                return Err(SubmitFailure::Fatal(format!(
                    "unexpected {:?} from service",
                    other.tag()
                )))
            }
        }
    }
}

/// Seeded-jitter exponential backoff between submit attempts — the same
/// shape as `drive`'s worker-restart delay: cap doubles per attempt up to
/// [`BACKOFF_MAX`], the delay lands uniformly in `[cap/2, cap]`.
fn submit_retry_delay(rng: &mut Xoshiro256, attempt: u64) -> Duration {
    let base = BACKOFF_BASE.as_nanos() as u64;
    let max = BACKOFF_MAX.as_nanos() as u64;
    let cap = base
        .saturating_mul(1u64 << attempt.min(20))
        .min(max.max(base))
        .max(2);
    Duration::from_nanos(cap / 2 + rng.range(0, cap / 2 + 1))
}

/// `amulet submit`.
pub(crate) fn cmd_submit(mut args: Args) -> Result<(), String> {
    let addr = args
        .value("--connect")?
        .ok_or("submit: --connect ADDR is required")?;
    let shape = ShapeOptions::parse(&mut args)?;
    let batch = args
        .parsed::<usize>("--batch")?
        .unwrap_or(ShardConfig::default().batch_programs)
        .max(1);
    let timeout = Duration::from_secs_f64(args.parsed::<f64>("--timeout-s")?.unwrap_or(600.0));
    let retries = args.parsed::<u64>("--retries")?.unwrap_or(0);
    let mut sink = JsonSink::open(args.value("--json")?)?;
    args.finish()?;

    let cfg = shape.config();
    let spec = CampaignSpec {
        defense: shape.defense.name().to_string(),
        contract: shape.contract.name().to_string(),
        seed: cfg.seed,
        scale: shape.scale,
        find_first: shape.find_first,
        batch_programs: batch,
        cycle_skip: !shape.no_cycle_skip,
    };
    // Deterministic jitter, decorrelated across campaigns by the seed.
    let mut rng = Xoshiro256::seed_from_u64(spec.seed ^ 0x5355_424d_4954_5232);
    let deadline = Instant::now() + timeout;
    let mut attempt = 0u64;
    loop {
        match submit_attempt(&addr, &spec, deadline, &mut sink) {
            Ok(()) => return Ok(()),
            Err(SubmitFailure::Fatal(e)) => return Err(e),
            Err(SubmitFailure::Transient(e)) => {
                if attempt >= retries {
                    return Err(if retries == 0 {
                        e
                    } else {
                        format!("submit: gave up after {retries} retries: {e}")
                    });
                }
                let delay = submit_retry_delay(&mut rng, attempt);
                attempt += 1;
                eprintln!(
                    "{}",
                    JsonObj::new()
                        .str("event", "submit_retry")
                        .int("attempt", attempt)
                        .int("delay_ms", delay.as_millis() as u64)
                        .str("error", &e)
                        .finish()
                );
                std::thread::sleep(delay);
            }
        }
    }
}

/// `amulet corpus`.
pub(crate) fn cmd_corpus(mut args: Args) -> Result<(), String> {
    let path = args
        .value("--file")?
        .ok_or("corpus: --file PATH is required")?;
    let class = args.value("--class")?;
    let defense = args.value("--defense")?;
    args.finish()?;

    let records = Corpus::open(&path).query(class.as_deref(), defense.as_deref())?;
    for rec in &records {
        println!("{}", rec.to_line());
    }
    eprintln!("{} record(s)", records.len());
    Ok(())
}
