//! `amulet serve` — the long-lived campaign service, plus the `amulet
//! submit` client and the `amulet corpus` query tool.
//!
//! The daemon glues three loops to one shared [`Service`]:
//!
//! - **client handlers** ([`serve_client`]): one per accepted connection,
//!   speaking the protocol-v5 service messages (`submit`/`accepted`/
//!   `rejected`/`recovering`/`progress`/`result`/`draining`/
//!   `cancel_campaign`) as JSONL over the socket;
//! - **local workers** ([`ServiceHost`]): in-process threads executing
//!   leased batches with per-campaign persistent runtimes;
//! - **TCP slots**: one thread per `--connect` address, forwarding leases
//!   to remote `amulet worker --listen` processes over the PR 6 link
//!   layer, with the same strike/backoff/quarantine ladder as `drive`.
//!
//! With `--state-dir DIR`, the daemon is crash-safe: a startup recovery
//! pass (`StateDir::recover`) reloads the persisted result cache and
//! clears stale journals, and every campaign is write-ahead journaled so
//! a killed daemon resumes interrupted work batch-granularly on restart —
//! the client sees a `recovering` note and a fingerprint-identical result.
//!
//! The daemon is also overload- and hostile-client-proof: admission
//! control (`--max-campaigns`/`--admit-queue`/`--client-quota`, enforced
//! by [`Admission`] in the core service) sheds excess submits with a
//! structured `rejected{reason,retry_after_ms}` instead of degrading;
//! sessions are hardened per [`SessionLimits`] (bounded line length,
//! idle-session reaping, a strike ladder for malformed traffic — the PR 6
//! shape); and SIGTERM runs a graceful drain (stop admitting, announce
//! `draining`, checkpoint or finish active campaigns, exit 0). Every
//! rejection, eviction and drain is logged as a structured stderr event
//! with a dense monotonic `seq`, like the fleet event log.
//!
//! Scheduling fairness, the result cache and corpus persistence live in
//! `amulet_core::service`; this module is transport and process glue —
//! which is why the service determinism suite (`tests/serve_session.rs`)
//! can drive [`serve_client`] over in-memory pipes and prove the same
//! properties the real-socket tests prove end-to-end.

use crate::net::{parse_connect_list, TcpLink};
use crate::{Args, JsonSink, ShapeOptions, WorkerLink};
use amulet_core::proto::{CampaignSpec, Msg, ResultMsg};
use amulet_core::{
    run_batch, Admission, BatchSpec, Corpus, Fragment, LeaseWait, Service, ServiceEvent,
    ShardConfig, StateDir, SubmitOutcome, UnitRuntime,
};
use amulet_util::{JsonObj, Xoshiro256};
use std::collections::{HashMap, HashSet};
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::TcpListener;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long a worker loop waits for a lease before housekeeping (runtime
/// garbage collection, shutdown checks).
const LEASE_POLL: Duration = Duration::from_millis(250);
/// Handshake/heartbeat deadline for TCP slots (as `drive`'s default).
const LIVENESS: Duration = Duration::from_secs(10);
/// Per-batch fragment deadline for TCP slots (as `drive`'s default).
const BATCH_TIMEOUT: Duration = Duration::from_secs(120);
/// First reconnect delay for a failing TCP slot; doubles per strike.
const BACKOFF_BASE: Duration = Duration::from_millis(50);
/// Upper bound on the reconnect delay.
const BACKOFF_MAX: Duration = Duration::from_secs(2);
/// Consecutive failures before a TCP slot retires (quarantine).
const QUARANTINE_AFTER: usize = 3;
/// How often the drained accept loop polls for the SIGTERM flag and new
/// connections.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// Per-session hardening limits for [`serve_client_with`] — the defense
/// against slowloris peers (bounded line assembly: a byte-at-a-time
/// writer is accounted against `max_line_bytes` as the bytes arrive, not
/// when a newline finally shows up), half-open peers (idle reaping), and
/// garbage floods (the strike ladder, PR 6's `QUARANTINE_AFTER` shape).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionLimits {
    /// Longest accepted protocol line, in bytes. An oversized frame is
    /// discarded (never buffered whole) and costs one strike.
    pub max_line_bytes: usize,
    /// Evict a session this long idle with nothing in flight — a client
    /// waiting on an owned campaign is never idle-evicted.
    pub idle_timeout: Duration,
    /// Strikes (malformed, unexpected, oversized frames) before eviction.
    pub strike_limit: usize,
}

impl Default for SessionLimits {
    fn default() -> Self {
        SessionLimits {
            max_line_bytes: 64 * 1024,
            idle_timeout: Duration::from_secs(300),
            strike_limit: QUARANTINE_AFTER,
        }
    }
}

/// Distinct identity per client conversation — what the per-client
/// admission quota counts. `u64::MAX` is the service's anonymous id, so
/// the counter can never collide with it in practice.
static CLIENT_SEQ: AtomicU64 = AtomicU64::new(0);

/// Emits one structured overload event (`rejected`/`evicted`/`draining`)
/// to stderr. The `seq` is dense and monotonic across all such events in
/// this process — the PR 7 fleet-event convention — which the serialising
/// lock guarantees even when session threads race.
fn daemon_event(build: impl FnOnce(u64) -> String) {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    static ORDER: Mutex<()> = Mutex::new(());
    let guard = ORDER.lock().unwrap();
    eprintln!("{}", build(SEQ.fetch_add(1, Ordering::Relaxed)));
    drop(guard);
}

/// One unit from a session's bounded reader thread.
enum Frame {
    /// A complete line within the size bound (trailing `\r` stripped).
    Line(String),
    /// A line exceeded the bound; this many bytes were discarded.
    TooLong(usize),
    /// A transport read deadline elapsed with the peer still connected —
    /// lets the session loop observe wall-clock idleness on a quiet link.
    Tick,
    /// The transport failed.
    Failed(String),
}

/// Reads newline-delimited frames from `input` under a hard per-line byte
/// bound, so a hostile peer can neither balloon memory with an endless
/// line nor smuggle one past the bound a byte at a time. Exits at EOF, on
/// transport error, or when the session side hangs up (send fails).
fn pump_frames<R: BufRead>(mut input: R, max_line: usize, tx: Sender<Frame>) {
    let mut line: Vec<u8> = Vec::new();
    let mut overflow = 0usize;
    loop {
        let (consumed, ended) = {
            let chunk = match input.fill_buf() {
                Ok([]) => return,
                Ok(chunk) => chunk,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    if tx.send(Frame::Tick).is_err() {
                        return;
                    }
                    continue;
                }
                Err(e) => {
                    let _ = tx.send(Frame::Failed(e.to_string()));
                    return;
                }
            };
            let newline = chunk.iter().position(|&b| b == b'\n');
            let body = &chunk[..newline.unwrap_or(chunk.len())];
            if overflow > 0 || line.len() + body.len() > max_line {
                if overflow == 0 {
                    overflow = line.len();
                    line.clear();
                }
                overflow += body.len();
            } else {
                line.extend_from_slice(body);
            }
            (newline.map_or(chunk.len(), |p| p + 1), newline.is_some())
        };
        input.consume(consumed);
        if ended {
            let frame = if overflow > 0 {
                Frame::TooLong(std::mem::take(&mut overflow))
            } else {
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                Frame::Line(String::from_utf8_lossy(&line).into_owned())
            };
            line.clear();
            if tx.send(frame).is_err() {
                return;
            }
        }
    }
}

/// The service plus its worker threads. [`ServiceHost::shutdown`] drains
/// and joins them; dropping without shutdown leaves daemon threads running
/// (they exit at the next poll once the service is shut down elsewhere).
pub struct ServiceHost {
    service: Arc<Service>,
    threads: Vec<JoinHandle<()>>,
}

impl ServiceHost {
    /// Starts `local_workers` in-process workers and one TCP slot per
    /// `connect` address, all leasing from `service`.
    pub fn start(service: Arc<Service>, local_workers: usize, connect: &[String]) -> Self {
        let mut host = ServiceHost {
            service,
            threads: Vec::new(),
        };
        host.add_local_workers(local_workers);
        for addr in connect {
            let service = host.service.clone();
            let addr = addr.clone();
            host.threads
                .push(std::thread::spawn(move || tcp_slot(&service, &addr)));
        }
        host
    }

    /// Adds more local workers to a running host (tests use this to pin
    /// down scheduling orders: submit first, attach workers second).
    pub fn add_local_workers(&mut self, n: usize) {
        for _ in 0..n {
            let service = self.service.clone();
            self.threads
                .push(std::thread::spawn(move || local_worker(&service)));
        }
    }

    /// The shared service.
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// Shuts the service down and joins every worker thread.
    pub fn shutdown(self) {
        self.service.shutdown();
        for t in self.threads {
            let _ = t.join();
        }
    }
}

/// An in-process worker loop: lease, execute, complete. Runtimes are
/// per-campaign (a [`UnitRuntime`] must never serve two configs) and are
/// garbage-collected when their campaign leaves the active set.
fn local_worker(service: &Service) {
    let mut runtimes: HashMap<u64, UnitRuntime> = HashMap::new();
    loop {
        match service.wait_lease(LEASE_POLL) {
            LeaseWait::Shutdown => return,
            LeaseWait::Idle => runtimes.retain(|id, _| service.is_active(*id)),
            LeaseWait::Lease(lease) => {
                let rt = runtimes.entry(lease.campaign).or_default();
                let fragment = run_batch(&lease.cfg, &lease.spec, lease.anchor, rt);
                service.complete(*lease, fragment);
            }
        }
    }
}

/// Why a TCP connection attempt could not serve a lease.
enum SlotError {
    /// The worker answered the handshake but for a different campaign
    /// (config mismatch) — it will never serve this campaign.
    Incompatible(String),
    /// Transport trouble — retry with backoff, quarantine eventually.
    Transient(String),
}

/// Connects to `addr` and completes the hello handshake against the
/// leased campaign's config.
fn connect_for(addr: &str, cfg: &amulet_core::CampaignConfig) -> Result<TcpLink, SlotError> {
    let mut link = TcpLink::connect(addr, LIVENESS).map_err(SlotError::Transient)?;
    match link.recv_timeout(LIVENESS) {
        Ok(Some(Msg::Hello(hello))) => hello.check(cfg).map_err(SlotError::Incompatible)?,
        Ok(Some(other)) => {
            return Err(SlotError::Transient(format!(
                "expected hello, got {:?}",
                other.tag()
            )))
        }
        Ok(None) => {
            return Err(SlotError::Transient(format!(
                "handshake timed out after {LIVENESS:?}"
            )))
        }
        Err(e) => return Err(SlotError::Transient(e)),
    }
    Ok(link)
}

/// One batch over a live worker session: heartbeat, assign, await the
/// fragment. A skipped fragment is an error — the service never sends
/// cancel floors to TCP workers, so a skip means a confused peer.
fn tcp_call(link: &mut TcpLink, spec: &BatchSpec, token: u64) -> Result<Fragment, String> {
    link.send(&Msg::Ping { token })?;
    match link.recv_timeout(LIVENESS)? {
        Some(Msg::Pong { token: t }) if t == token => {}
        Some(other) => return Err(format!("expected pong, got {:?}", other.tag())),
        None => return Err(format!("heartbeat timed out after {LIVENESS:?}")),
    }
    link.send(&Msg::Batch(*spec))?;
    match link.recv_timeout(BATCH_TIMEOUT)? {
        Some(Msg::Fragment(reply)) if reply.index == spec.index && !reply.skipped => {
            Ok(reply.into_fragment())
        }
        Some(Msg::Fragment(reply)) => Err(format!(
            "unusable fragment for batch {} (index {}, skipped {})",
            spec.index, reply.index, reply.skipped
        )),
        Some(other) => Err(format!("expected fragment, got {:?}", other.tag())),
        None => Err(format!(
            "batch {} timed out after {BATCH_TIMEOUT:?}",
            spec.index
        )),
    }
}

/// A TCP worker slot: forwards leases to one remote `amulet worker
/// --listen` process. Sessions are per-campaign (a remote worker's
/// persistent runtime must not mix campaigns); campaigns whose config the
/// worker rejects are remembered and skipped; transport failures release
/// the lease for other workers and climb a strike ladder to quarantine.
fn tcp_slot(service: &Service, addr: &str) {
    let mut incompatible: HashSet<u64> = HashSet::new();
    let mut session: Option<(u64, TcpLink)> = None;
    let mut strikes = 0usize;
    let mut token = 0u64;
    let teardown = |session: &mut Option<(u64, TcpLink)>| {
        if let Some((_, mut link)) = session.take() {
            let _ = link.send(&Msg::Shutdown);
        }
    };
    loop {
        let lease = match service.wait_lease_where(LEASE_POLL, |id| !incompatible.contains(&id)) {
            LeaseWait::Shutdown => {
                teardown(&mut session);
                return;
            }
            LeaseWait::Idle => {
                incompatible.retain(|id| service.is_active(*id));
                if session
                    .as_ref()
                    .is_some_and(|(id, _)| !service.is_active(*id))
                {
                    teardown(&mut session);
                }
                continue;
            }
            LeaseWait::Lease(lease) => lease,
        };
        if session
            .as_ref()
            .is_some_and(|(id, _)| *id != lease.campaign)
        {
            teardown(&mut session);
        }
        if session.is_none() {
            match connect_for(addr, &lease.cfg) {
                Ok(link) => session = Some((lease.campaign, link)),
                Err(SlotError::Incompatible(e)) => {
                    eprintln!(
                        "tcp worker {addr}: campaign {} incompatible: {e}",
                        lease.campaign
                    );
                    incompatible.insert(lease.campaign);
                    service.release(*lease);
                    continue;
                }
                Err(SlotError::Transient(e)) => {
                    service.release(*lease);
                    strikes += 1;
                    if strikes >= QUARANTINE_AFTER {
                        eprintln!("tcp worker {addr}: quarantined after {strikes} failures ({e})");
                        return;
                    }
                    std::thread::sleep(backoff(strikes));
                    continue;
                }
            }
        }
        let (_, link) = session.as_mut().expect("session established above");
        token = token.wrapping_add(1);
        match tcp_call(link, &lease.spec, token) {
            Ok(fragment) => {
                strikes = 0;
                service.complete(*lease, fragment);
            }
            Err(e) => {
                // The batch was not completed — tear the session down (it
                // may hold a half-finished exchange) and give the batch
                // back for any worker to adopt.
                session = None;
                service.release(*lease);
                strikes += 1;
                if strikes >= QUARANTINE_AFTER {
                    eprintln!("tcp worker {addr}: quarantined after {strikes} failures ({e})");
                    return;
                }
                std::thread::sleep(backoff(strikes));
            }
        }
    }
}

fn backoff(strikes: usize) -> Duration {
    BACKOFF_BASE
        .saturating_mul(1u32 << (strikes.min(16) as u32).saturating_sub(1))
        .min(BACKOFF_MAX)
}

/// Counters from one client conversation.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ClientStats {
    /// `submit` messages accepted (cache hits included).
    pub submitted: usize,
    /// Submits answered straight from the result cache.
    pub cache_hits: usize,
    /// Submits shed by admission control (`rejected` answers).
    pub rejected: usize,
    /// Terminal `result` messages delivered.
    pub results: usize,
    /// `cancel_campaign` messages processed.
    pub cancelled: usize,
    /// Lines that were not valid protocol messages (oversized included).
    pub malformed: usize,
    /// Why the session was evicted (`"strikes"`/`"idle"`), if it was.
    pub evicted: Option<&'static str>,
}

/// [`serve_client_with`] under the default [`SessionLimits`].
pub fn serve_client<R, W>(service: &Arc<Service>, input: R, out: W) -> Result<ClientStats, String>
where
    R: BufRead + Send + 'static,
    W: Write,
{
    serve_client_with(service, input, out, &SessionLimits::default())
}

/// Serves one client conversation: reads protocol-v5 JSONL from `input`,
/// writes `accepted`/`rejected`/`progress`/`result`/`draining` lines to
/// `out`, and returns when the client disconnects and every campaign it
/// owned has resolved — or earlier, when the hardening `limits` evict the
/// session (strike ladder, idle reaping) or a service drain winds it
/// down.
///
/// Campaigns still active when the conversation ends are cancelled — a
/// result nobody will read is not worth worker time. On a *persistent*
/// service that cancellation is the checkpoint-drain hand-off: the
/// write-ahead journal file survives, so the client's resubmit against a
/// restarted daemon resumes batch-granularly. Submit errors are answered
/// with an error `result` under campaign id `u64::MAX` (no id was ever
/// assigned); admission sheds are answered with `rejected` and logged as
/// structured `rejected` events.
pub fn serve_client_with<R, W>(
    service: &Arc<Service>,
    input: R,
    mut out: W,
    limits: &SessionLimits,
) -> Result<ClientStats, String>
where
    R: BufRead + Send + 'static,
    W: Write,
{
    let client = CLIENT_SEQ.fetch_add(1, Ordering::Relaxed);
    // Subscribe before the first submit can possibly resolve, so no event
    // for an owned campaign is ever missed.
    let events = service.subscribe();
    let (tx, frames) = channel();
    let max_line = limits.max_line_bytes;
    std::thread::spawn(move || pump_frames(input, max_line, tx));

    let mut stats = ClientStats::default();
    let mut owned: HashSet<u64> = HashSet::new();
    let mut open = true;
    let mut strikes = 0usize;
    let mut saw_drain = false;
    let mut last_frame = Instant::now();
    let result = (|| -> Result<(), String> {
        let send = |out: &mut W, msg: &Msg| -> Result<(), String> {
            writeln!(out, "{}", msg.to_line())
                .and_then(|()| out.flush())
                .map_err(|e| format!("client write failed: {e}"))
        };
        while open || !owned.is_empty() {
            match frames.recv_timeout(Duration::from_millis(20)) {
                Ok(Frame::Line(line)) if line.trim().is_empty() => last_frame = Instant::now(),
                Ok(Frame::Line(line)) => {
                    last_frame = Instant::now();
                    match Msg::parse_line(&line) {
                        Ok(Msg::Submit(spec)) => match service.submit_for(client, &spec) {
                            Ok(SubmitOutcome::Accepted {
                                campaign,
                                total_batches,
                                recovered,
                            }) => {
                                stats.submitted += 1;
                                owned.insert(campaign);
                                send(
                                    &mut out,
                                    &Msg::Accepted {
                                        campaign,
                                        cached: false,
                                    },
                                )?;
                                if recovered > 0 {
                                    send(
                                        &mut out,
                                        &Msg::Recovering {
                                            campaign,
                                            recovered,
                                            total: total_batches,
                                        },
                                    )?;
                                }
                            }
                            Ok(SubmitOutcome::Cached { campaign, result }) => {
                                stats.submitted += 1;
                                stats.cache_hits += 1;
                                stats.results += 1;
                                send(
                                    &mut out,
                                    &Msg::Accepted {
                                        campaign,
                                        cached: true,
                                    },
                                )?;
                                send(&mut out, &Msg::CampaignResult(*result))?;
                            }
                            Ok(SubmitOutcome::Rejected {
                                reason,
                                retry_after_ms,
                            }) => {
                                stats.rejected += 1;
                                daemon_event(|seq| {
                                    JsonObj::new()
                                        .str("event", "rejected")
                                        .int("seq", seq)
                                        .int("client", client)
                                        .str("reason", &reason)
                                        .int("retry_after_ms", retry_after_ms)
                                        .finish()
                                });
                                send(
                                    &mut out,
                                    &Msg::Rejected {
                                        reason,
                                        retry_after_ms,
                                    },
                                )?;
                            }
                            Err(e) => {
                                send(
                                    &mut out,
                                    &Msg::CampaignResult(ResultMsg {
                                        campaign: u64::MAX,
                                        cached: false,
                                        cancelled: false,
                                        executed_batches: 0,
                                        report: None,
                                        error: Some(e),
                                    }),
                                )?;
                            }
                        },
                        Ok(Msg::CancelCampaign { campaign }) => {
                            stats.cancelled += 1;
                            service.cancel(campaign);
                        }
                        Ok(other) => {
                            stats.malformed += 1;
                            strikes += 1;
                            eprintln!("client {client} sent unexpected {:?}", other.tag());
                        }
                        Err(e) => {
                            stats.malformed += 1;
                            strikes += 1;
                            eprintln!("client {client} sent malformed line: {e}");
                        }
                    }
                }
                Ok(Frame::TooLong(bytes)) => {
                    last_frame = Instant::now();
                    stats.malformed += 1;
                    strikes += 1;
                    eprintln!("client {client} sent oversized frame ({bytes} bytes, discarded)");
                }
                Ok(Frame::Tick) => {}
                Ok(Frame::Failed(e)) => return Err(format!("client read failed: {e}")),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => open = false,
            }
            if open && strikes >= limits.strike_limit {
                stats.evicted = Some("strikes");
            } else if open && owned.is_empty() && last_frame.elapsed() >= limits.idle_timeout {
                stats.evicted = Some("idle");
            }
            if let Some(reason) = stats.evicted {
                daemon_event(|seq| {
                    JsonObj::new()
                        .str("event", "evicted")
                        .int("seq", seq)
                        .int("client", client)
                        .str("reason", reason)
                        .int("malformed", stats.malformed as u64)
                        .finish()
                });
                return Ok(());
            }
            loop {
                match events.try_recv() {
                    Ok(ServiceEvent::Progress {
                        campaign,
                        done,
                        total,
                        cases,
                    }) if owned.contains(&campaign) => send(
                        &mut out,
                        &Msg::Progress {
                            campaign,
                            done,
                            total,
                            cases,
                        },
                    )?,
                    Ok(ServiceEvent::Finished { campaign }) if owned.contains(&campaign) => {
                        if let Some(result) = service.take_result(campaign) {
                            stats.results += 1;
                            owned.remove(&campaign);
                            send(&mut out, &Msg::CampaignResult(result))?;
                        }
                    }
                    Ok(ServiceEvent::Draining { active }) => {
                        saw_drain = true;
                        send(&mut out, &Msg::Draining { active })?;
                    }
                    Ok(_) => {}
                    Err(_) => break,
                }
            }
            // Drain wind-down: a persistent service checkpoints — the
            // cleanup below cancels owned campaigns, whose journal files
            // survive for the restarted daemon to resume. An in-memory
            // service finishes owned campaigns first (their results would
            // otherwise be lost with the process).
            if saw_drain && (service.persistent() || owned.is_empty()) {
                return Ok(());
            }
        }
        Ok(())
    })();
    // Whatever ended the conversation, never leave orphaned campaigns
    // burning worker time for a client that will not read the result.
    for id in owned.drain() {
        service.cancel(id);
        let _ = service.take_result(id);
    }
    result.map(|()| stats)
}

/// SIGTERM → graceful drain, installed with no external crate: the
/// handler only stores into an atomic (async-signal-safe), the accept
/// loop polls the flag between nonblocking accepts.
#[cfg(unix)]
mod term {
    use std::sync::atomic::{AtomicBool, Ordering};

    static FLAG: AtomicBool = AtomicBool::new(false);

    type Handler = extern "C" fn(i32);
    extern "C" {
        fn signal(signum: i32, handler: Handler) -> usize;
    }

    extern "C" fn on_term(_sig: i32) {
        FLAG.store(true, Ordering::SeqCst);
    }

    /// Installs the SIGTERM handler (signal 15 on every supported Unix).
    pub fn install() {
        unsafe {
            let _ = signal(15, on_term);
        }
    }

    /// Whether SIGTERM has arrived since [`install`].
    pub fn requested() -> bool {
        FLAG.load(Ordering::SeqCst)
    }
}

/// SIGTERM drain is Unix-only; elsewhere the flag simply never fires and
/// the daemon stops via `--sessions` or a hard kill.
#[cfg(not(unix))]
mod term {
    pub fn install() {}
    pub fn requested() -> bool {
        false
    }
}

/// `amulet serve`.
pub(crate) fn cmd_serve(mut args: Args) -> Result<(), String> {
    let listen_addr = args
        .value("--listen")?
        .ok_or("serve: --listen ADDR is required")?;
    let workers = args.parsed::<usize>("--workers")?.unwrap_or(1);
    let connect = match args.value("--connect")? {
        Some(list) => parse_connect_list(&list)?,
        None => Vec::new(),
    };
    let corpus = args.value("--corpus")?.map(Corpus::open);
    let state = args.value("--state-dir")?.map(StateDir::open).transpose()?;
    let sessions = args.parsed::<usize>("--sessions")?.unwrap_or(0);
    let admission = Admission {
        max_active: args.parsed::<usize>("--max-campaigns")?.unwrap_or(0),
        max_queue: args.parsed::<usize>("--admit-queue")?.unwrap_or(16),
        per_client: args.parsed::<usize>("--client-quota")?.unwrap_or(0),
    };
    args.finish()?;
    if workers == 0 && connect.is_empty() {
        return Err("serve: need at least one worker (--workers N or --connect LIST)".into());
    }

    let listener =
        TcpListener::bind(&listen_addr).map_err(|e| format!("cannot bind {listen_addr}: {e}"))?;
    let local = listener
        .local_addr()
        .map_err(|e| format!("cannot read bound address: {e}"))?;
    eprintln!(
        "{}",
        JsonObj::new()
            .str("event", "serving")
            .str("addr", &local.to_string())
            .int("pid", u64::from(std::process::id()))
            .int("workers", workers as u64)
            .int("tcp_slots", connect.len() as u64)
            .finish()
    );

    let service = Arc::new(match state {
        Some(state) => {
            // The startup recovery pass: reload the persisted result cache,
            // clear journals whose campaign already completed, and announce
            // what a resubmit could resume.
            let recovery = state.recover()?;
            eprintln!(
                "{}",
                JsonObj::new()
                    .str("event", "recovery")
                    .str("state_dir", &state.path().display().to_string())
                    .int("cached", recovery.cache.len() as u64)
                    .int("resumable", recovery.resumable as u64)
                    .int("cleared", recovery.cleared as u64)
                    .int("corrupt", recovery.corrupt as u64)
                    .finish()
            );
            Service::with_persistence(corpus, state, recovery)
        }
        None => Service::with_corpus(corpus),
    });
    service.set_admission(admission);
    let host = ServiceHost::start(service.clone(), workers, &connect);
    term::install();
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("cannot poll listener: {e}"))?;
    let limits = SessionLimits::default();
    let session_seq = AtomicU64::new(0);
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    let mut served = 0usize;
    loop {
        if term::requested() {
            // Graceful drain: stop admitting, tell every connected client,
            // let sessions checkpoint (persistent) or finish (in-memory),
            // then exit 0 below.
            let active = service.drain();
            daemon_event(|seq| {
                JsonObj::new()
                    .str("event", "draining")
                    .int("seq", seq)
                    .int("active", active)
                    .finish()
            });
            break;
        }
        let (stream, peer) = match listener.accept() {
            Ok(accepted) => accepted,
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                // Reap finished sessions so an eviction-heavy day keeps
                // the daemon's memory bounded by *live* sessions.
                handlers.retain(|h| !h.is_finished());
                std::thread::sleep(ACCEPT_POLL);
                continue;
            }
            Err(e) => return Err(format!("accept failed: {e}")),
        };
        let _ = stream.set_nonblocking(false);
        let _ = stream.set_nodelay(true);
        // The read deadline turns a silent half-open peer into periodic
        // reader-thread ticks (so idle reaping fires); the write deadline
        // keeps a non-reading peer from wedging the session thread.
        let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
        let session = session_seq.fetch_add(1, Ordering::Relaxed);
        eprintln!(
            "{}",
            JsonObj::new()
                .str("event", "session_start")
                .int("session", session)
                .str("peer", &peer.to_string())
                .finish()
        );
        let service = service.clone();
        handlers.push(std::thread::spawn(move || {
            let reader = match stream.try_clone() {
                Ok(s) => BufReader::new(s),
                Err(e) => {
                    eprintln!("cannot clone client stream: {e}");
                    return;
                }
            };
            match serve_client_with(&service, reader, &stream, &limits) {
                Ok(stats) => eprintln!(
                    "{}",
                    JsonObj::new()
                        .str("event", "session_end")
                        .int("session", session)
                        .int("submitted", stats.submitted as u64)
                        .int("cache_hits", stats.cache_hits as u64)
                        .int("rejected", stats.rejected as u64)
                        .int("results", stats.results as u64)
                        .int("cancelled", stats.cancelled as u64)
                        .int("malformed", stats.malformed as u64)
                        .str("evicted", stats.evicted.unwrap_or(""))
                        .finish()
                ),
                Err(e) => eprintln!(
                    "{}",
                    JsonObj::new()
                        .str("event", "session_error")
                        .int("session", session)
                        .str("error", &e)
                        .finish()
                ),
            }
        }));
        served += 1;
        if sessions != 0 && served >= sessions {
            break;
        }
    }
    for h in handlers {
        let _ = h.join();
    }
    host.shutdown();
    Ok(())
}

/// Why one `amulet submit` attempt failed.
#[derive(Debug)]
enum SubmitFailure {
    /// The service answered: the campaign itself failed or was cancelled.
    /// Retrying cannot change the outcome.
    Fatal(String),
    /// Transport trouble (connect refused, connection lost mid-campaign) —
    /// a resubmit converges on the same fingerprint, because the service
    /// answers a repeat submit from its cache or resumes its journal.
    Transient(String),
    /// Admission control shed the submit. Retryable like `Transient`, but
    /// the wait honors the server's `retry_after_ms` hint (capped).
    Shed {
        /// The server's stated reason.
        reason: String,
        /// The server's backoff hint, in milliseconds.
        retry_after_ms: u64,
    },
}

/// One received message's effect on an `amulet submit` await loop.
#[derive(Debug)]
enum AwaitStep {
    /// Progress chatter — keep waiting.
    Continue,
    /// The terminal result, already vetted to carry a report.
    Result(Box<ResultMsg>),
    /// The attempt is over.
    Fail(SubmitFailure),
}

/// The fatal-vs-transient-vs-shed split for everything a submit attempt
/// can hear. Fatal: the service answered and retrying cannot change the
/// outcome (campaign error, cancellation, protocol confusion, deadline).
/// Shed: admission control refused — retry after the server's hint.
/// `draining` is chatter: the current conversation either still delivers
/// (finish-drain) or dies with the connection, which the caller already
/// maps to `Transient` — and a resubmit resumes the journal.
fn classify_await(msg: Option<Msg>) -> AwaitStep {
    match msg {
        None => AwaitStep::Fail(SubmitFailure::Fatal("submit: deadline exhausted".into())),
        Some(Msg::Accepted { campaign, cached }) => {
            eprintln!("campaign {campaign} accepted (cached: {cached})");
            AwaitStep::Continue
        }
        Some(Msg::Rejected {
            reason,
            retry_after_ms,
        }) => AwaitStep::Fail(SubmitFailure::Shed {
            reason,
            retry_after_ms,
        }),
        Some(Msg::Draining { active }) => {
            eprintln!("service is draining ({active} campaign(s) still in flight)");
            AwaitStep::Continue
        }
        Some(Msg::Recovering {
            campaign,
            recovered,
            total,
        }) => {
            eprintln!(
                "campaign {campaign}: resuming from journal, \
                 {recovered}/{total} batches already on disk"
            );
            AwaitStep::Continue
        }
        Some(Msg::Progress {
            campaign,
            done,
            total,
            cases,
        }) => {
            eprintln!("campaign {campaign}: {done}/{total} batches, {cases} cases");
            AwaitStep::Continue
        }
        Some(Msg::CampaignResult(r)) => {
            if let Some(e) = r.error {
                AwaitStep::Fail(SubmitFailure::Fatal(format!("campaign failed: {e}")))
            } else if r.cancelled {
                AwaitStep::Fail(SubmitFailure::Fatal(format!(
                    "campaign {} was cancelled",
                    r.campaign
                )))
            } else if r.report.is_none() {
                AwaitStep::Fail(SubmitFailure::Fatal("result carried no report".into()))
            } else {
                AwaitStep::Result(Box::new(r))
            }
        }
        Some(other) => AwaitStep::Fail(SubmitFailure::Fatal(format!(
            "unexpected {:?} from service",
            other.tag()
        ))),
    }
}

/// One connect → submit → await-result conversation.
fn submit_attempt(
    addr: &str,
    spec: &CampaignSpec,
    deadline: Instant,
    sink: &mut JsonSink,
) -> Result<(), SubmitFailure> {
    let mut link =
        TcpLink::connect(addr, Duration::from_secs(10)).map_err(SubmitFailure::Transient)?;
    link.send(&Msg::Submit(spec.clone()))
        .map_err(SubmitFailure::Transient)?;
    loop {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(SubmitFailure::Fatal("submit: deadline exhausted".into()));
        }
        let msg = link
            .recv_timeout(remaining)
            .map_err(SubmitFailure::Transient)?;
        let r = match classify_await(msg) {
            AwaitStep::Continue => continue,
            AwaitStep::Fail(f) => return Err(f),
            AwaitStep::Result(r) => r,
        };
        let rep = r.report.expect("classified as carrying a report");
        let line = JsonObj::new()
            .int("campaign", r.campaign)
            .bool("cached", r.cached)
            .int("executed_batches", r.executed_batches)
            .str("defense", &rep.defense)
            .str("contract", &rep.contract)
            .str("seed", &rep.seed.to_string())
            .int("cases", rep.stats.cases as u64)
            .int("confirmed", rep.stats.confirmed as u64)
            .bool("violation", !rep.digests.is_empty())
            .str("fingerprint", &format!("{:#018x}", rep.fingerprint()))
            .finish();
        println!("{line}");
        // `--json -` already printed above; only duplicate into a real
        // file sink.
        if !matches!(sink, JsonSink::Stdout) {
            sink.line(&line).map_err(SubmitFailure::Fatal)?;
        }
        return Ok(());
    }
}

/// Seeded-jitter exponential backoff between submit attempts — the same
/// shape as `drive`'s worker-restart delay: cap doubles per attempt up to
/// [`BACKOFF_MAX`], the delay lands uniformly in `[cap/2, cap]`.
fn submit_retry_delay(rng: &mut Xoshiro256, attempt: u64) -> Duration {
    let base = BACKOFF_BASE.as_nanos() as u64;
    let max = BACKOFF_MAX.as_nanos() as u64;
    let cap = base
        .saturating_mul(1u64 << attempt.min(20))
        .min(max.max(base))
        .max(2);
    Duration::from_nanos(cap / 2 + rng.range(0, cap / 2 + 1))
}

/// Upper bound on honoring a server's `retry_after_ms` hint — a hostile
/// or confused server must not park the client for minutes.
const SHED_DELAY_CAP: Duration = Duration::from_secs(10);

/// The wait after a shed submit: the server's hint, capped, under the
/// same seeded half-jitter as [`submit_retry_delay`] — the delay lands
/// uniformly in `[hint/2, hint]`.
fn shed_delay(rng: &mut Xoshiro256, retry_after_ms: u64) -> Duration {
    let hint = Duration::from_millis(retry_after_ms.max(1)).min(SHED_DELAY_CAP);
    let nanos = (hint.as_nanos() as u64).max(2);
    Duration::from_nanos(nanos / 2 + rng.range(0, nanos / 2 + 1))
}

/// `amulet submit`.
pub(crate) fn cmd_submit(mut args: Args) -> Result<(), String> {
    let addr = args
        .value("--connect")?
        .ok_or("submit: --connect ADDR is required")?;
    let shape = ShapeOptions::parse(&mut args)?;
    let batch = args
        .parsed::<usize>("--batch")?
        .unwrap_or(ShardConfig::default().batch_programs)
        .max(1);
    let timeout = Duration::from_secs_f64(args.parsed::<f64>("--timeout-s")?.unwrap_or(600.0));
    let retries = args.parsed::<u64>("--retries")?.unwrap_or(0);
    let mut sink = JsonSink::open(args.value("--json")?)?;
    args.finish()?;

    let cfg = shape.config();
    let spec = CampaignSpec {
        defense: shape.defense.name().to_string(),
        contract: shape.contract.name().to_string(),
        source: shape.source.name().to_string(),
        seed: cfg.seed,
        scale: shape.scale,
        find_first: shape.find_first,
        batch_programs: batch,
        cycle_skip: !shape.no_cycle_skip,
    };
    // Deterministic jitter, decorrelated across campaigns by the seed.
    let mut rng = Xoshiro256::seed_from_u64(spec.seed ^ 0x5355_424d_4954_5232);
    let deadline = Instant::now() + timeout;
    let mut attempt = 0u64;
    loop {
        // A shed is transient — the server told us exactly when to come
        // back — so it rides the same --retries budget, with the hinted
        // delay instead of the exponential ladder.
        let (hint, why) = match submit_attempt(&addr, &spec, deadline, &mut sink) {
            Ok(()) => return Ok(()),
            Err(SubmitFailure::Fatal(e)) => return Err(e),
            Err(SubmitFailure::Transient(e)) => (None, e),
            Err(SubmitFailure::Shed {
                reason,
                retry_after_ms,
            }) => (Some(retry_after_ms), format!("submit rejected: {reason}")),
        };
        if attempt >= retries {
            return Err(if retries == 0 {
                why
            } else {
                format!("submit: gave up after {retries} retries: {why}")
            });
        }
        let delay = match hint {
            Some(retry_after_ms) => shed_delay(&mut rng, retry_after_ms),
            None => submit_retry_delay(&mut rng, attempt),
        };
        attempt += 1;
        eprintln!(
            "{}",
            JsonObj::new()
                .str("event", "submit_retry")
                .int("attempt", attempt)
                .int("delay_ms", delay.as_millis() as u64)
                .str("error", &why)
                .finish()
        );
        std::thread::sleep(delay);
    }
}

/// `amulet corpus`.
pub(crate) fn cmd_corpus(mut args: Args) -> Result<(), String> {
    let path = args
        .value("--file")?
        .ok_or("corpus: --file PATH is required")?;
    let class = args.value("--class")?;
    let defense = args.value("--defense")?;
    args.finish()?;

    let records = Corpus::open(&path).query(class.as_deref(), defense.as_deref())?;
    for rec in &records {
        println!("{}", rec.to_line());
    }
    eprintln!("{} record(s)", records.len());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result_msg(cancelled: bool, error: Option<&str>) -> Msg {
        Msg::CampaignResult(ResultMsg {
            campaign: 1,
            cached: false,
            cancelled,
            executed_batches: 0,
            report: None,
            error: error.map(str::to_owned),
        })
    }

    /// The fatal-vs-transient-vs-shed split the retry loop rests on:
    /// chatter continues, rejections shed with the hint passed through,
    /// and service answers that cannot improve on retry are fatal.
    #[test]
    fn await_classification_splits_fatal_and_shed() {
        for chatter in [
            Msg::Accepted {
                campaign: 1,
                cached: false,
            },
            Msg::Recovering {
                campaign: 1,
                recovered: 2,
                total: 8,
            },
            Msg::Progress {
                campaign: 1,
                done: 1,
                total: 8,
                cases: 9,
            },
            Msg::Draining { active: 3 },
        ] {
            assert!(
                matches!(classify_await(Some(chatter.clone())), AwaitStep::Continue),
                "{:?} must continue the await",
                chatter.tag()
            );
        }
        match classify_await(Some(Msg::Rejected {
            reason: "queue full".into(),
            retry_after_ms: 250,
        })) {
            AwaitStep::Fail(SubmitFailure::Shed {
                reason,
                retry_after_ms,
            }) => {
                assert_eq!(reason, "queue full");
                assert_eq!(retry_after_ms, 250, "the hint must pass through");
            }
            other => panic!("rejected must classify as shed, got {other:?}"),
        }
        for (fatal, what) in [
            (classify_await(None), "deadline"),
            (
                classify_await(Some(result_msg(false, Some("boom")))),
                "error",
            ),
            (classify_await(Some(result_msg(true, None))), "cancelled"),
            (classify_await(Some(result_msg(false, None))), "no report"),
            (classify_await(Some(Msg::Ping { token: 1 })), "protocol"),
        ] {
            assert!(
                matches!(fatal, AwaitStep::Fail(SubmitFailure::Fatal(_))),
                "{what} must be fatal, got {fatal:?}"
            );
        }
    }

    /// The shed wait honors the server's hint with half-jitter, and caps
    /// a hostile hint at [`SHED_DELAY_CAP`].
    #[test]
    fn shed_delay_honors_the_hint_within_the_cap() {
        let mut rng = Xoshiro256::seed_from_u64(41);
        for _ in 0..200 {
            let d = shed_delay(&mut rng, 400);
            assert!(
                d >= Duration::from_millis(200) && d <= Duration::from_millis(400),
                "delay {d:?} outside [hint/2, hint]"
            );
        }
        for _ in 0..200 {
            let d = shed_delay(&mut rng, 10 * 60 * 1000);
            assert!(d <= SHED_DELAY_CAP, "hostile hint must be capped");
            assert!(d >= SHED_DELAY_CAP / 2);
        }
        assert!(
            shed_delay(&mut rng, 0) > Duration::ZERO,
            "never a busy spin"
        );
    }

    /// The bounded reader assembles split frames, strips `\r`, discards
    /// oversized lines without buffering them, and reports the overflow —
    /// including a line dripped in byte by byte (slowloris).
    #[test]
    fn pump_frames_bounds_lines_and_reassembles_chunks() {
        struct Script(Vec<Vec<u8>>);
        impl std::io::Read for Script {
            fn read(&mut self, _buf: &mut [u8]) -> std::io::Result<usize> {
                unreachable!("BufRead goes through fill_buf")
            }
        }
        impl BufRead for Script {
            fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
                match self.0.first() {
                    Some(chunk) => Ok(chunk),
                    None => Ok(&[]),
                }
            }
            fn consume(&mut self, amt: usize) {
                if amt == 0 {
                    return;
                }
                let chunk = &mut self.0[0];
                chunk.drain(..amt);
                if chunk.is_empty() {
                    self.0.remove(0);
                }
            }
        }

        let mut chunks: Vec<Vec<u8>> = vec![b"hel".to_vec(), b"lo\r\nwo".to_vec()];
        // 100 more bytes dripped one at a time against a 16-byte cap: the
        // oversized line is "wo" + 100 × "x" = 102 bytes, all discarded.
        chunks.extend((0..100).map(|_| b"x".to_vec()));
        chunks.push(b"\nrld\n".to_vec());
        let (tx, rx) = channel();
        pump_frames(Script(chunks), 16, tx);
        let frames: Vec<Frame> = rx.iter().collect();
        assert_eq!(frames.len(), 3, "hello, overflow, rld");
        assert!(matches!(&frames[0], Frame::Line(l) if l == "hello"));
        assert!(
            matches!(frames[1], Frame::TooLong(n) if n == 102),
            "the slow drip must be discarded, not assembled"
        );
        assert!(matches!(&frames[2], Frame::Line(l) if l == "rld"));
    }
}
