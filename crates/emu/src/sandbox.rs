//! The memory sandbox shared by the emulator and (conceptually) the
//! simulator: a power-of-two region into which every access is wrapped.
//!
//! Revizor instruments generated code so that every memory operand is masked
//! into the sandbox; AMuLeT-rs generated programs carry the same explicit
//! `AND` masking instructions, and the sandbox additionally *wraps* any
//! residual out-of-range address (e.g. on wrong-path execution that entered a
//! block past its masking instruction). Wrapping is deterministic and
//! identical in the emulator and the simulator, so it can never create a
//! spurious contract violation.

use amulet_isa::Width;

/// A power-of-two-sized memory region at a base virtual address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sandbox {
    base: u64,
    data: Vec<u8>,
    mask: u64,
}

impl Sandbox {
    /// Creates a sandbox of `size` bytes (must be a power of two) based at
    /// virtual address `base`, initialised with zeroes.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or not a power of two.
    pub fn new(base: u64, size: usize) -> Self {
        assert!(
            size.is_power_of_two(),
            "sandbox size must be a power of two"
        );
        Sandbox {
            base,
            data: vec![0; size],
            mask: (size - 1) as u64,
        }
    }

    /// Creates a sandbox initialised from `contents` (length must be a power
    /// of two).
    ///
    /// # Panics
    ///
    /// Panics if `contents.len()` is zero or not a power of two.
    pub fn from_bytes(base: u64, contents: &[u8]) -> Self {
        let mut s = Sandbox::new(base, contents.len());
        s.data.copy_from_slice(contents);
        s
    }

    /// The base virtual address.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Size in bytes.
    pub fn size(&self) -> usize {
        self.data.len()
    }

    /// Maps a virtual address to a sandbox offset, wrapping out-of-range
    /// addresses into the region.
    pub fn offset_of(&self, addr: u64) -> u64 {
        addr.wrapping_sub(self.base) & self.mask
    }

    /// The wrapped virtual address an access to `addr` actually touches.
    pub fn wrap(&self, addr: u64) -> u64 {
        self.base + self.offset_of(addr)
    }

    /// Reads a single byte at a (wrapped) virtual address.
    pub fn read_u8(&self, addr: u64) -> u8 {
        self.data[self.offset_of(addr) as usize]
    }

    /// Writes a single byte at a (wrapped) virtual address, returning the
    /// previous value.
    pub fn write_u8(&mut self, addr: u64, value: u8) -> u8 {
        let off = self.offset_of(addr) as usize;
        std::mem::replace(&mut self.data[off], value)
    }

    /// Reads a little-endian value of the given width; bytes wrap
    /// individually at the sandbox boundary.
    pub fn read(&self, addr: u64, width: Width) -> u64 {
        let mut v = 0u64;
        for i in 0..width.bytes() {
            v |= (self.read_u8(addr.wrapping_add(i)) as u64) << (8 * i);
        }
        v
    }

    /// Writes a little-endian value of the given width; bytes wrap
    /// individually at the sandbox boundary.
    pub fn write(&mut self, addr: u64, width: Width, value: u64) {
        for i in 0..width.bytes() {
            self.write_u8(addr.wrapping_add(i), (value >> (8 * i)) as u8);
        }
    }

    /// Reloads the sandbox in place from `contents`, zero-filling the tail
    /// when `contents` is shorter than the region and truncating when it is
    /// longer. Unlike [`Sandbox::from_bytes`] this never reallocates, so the
    /// fuzzing hot path can reuse one sandbox image across test cases.
    pub fn load(&mut self, contents: &[u8]) {
        let n = contents.len().min(self.data.len());
        self.data[..n].copy_from_slice(&contents[..n]);
        self.data[n..].fill(0);
    }

    /// Replaces the whole contents (length must match).
    ///
    /// # Panics
    ///
    /// Panics if `contents.len() != self.size()`.
    pub fn overwrite(&mut self, contents: &[u8]) {
        assert_eq!(contents.len(), self.size(), "sandbox size mismatch");
        self.data.copy_from_slice(contents);
    }

    /// Raw view of the contents.
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_addresses_into_region() {
        let s = Sandbox::new(0x4000, 4096);
        assert_eq!(s.offset_of(0x4000), 0);
        assert_eq!(s.offset_of(0x4FFF), 0xFFF);
        assert_eq!(s.offset_of(0x5000), 0, "one past the end wraps to start");
        assert_eq!(s.offset_of(0x3FFF), 0xFFF, "below base wraps from the top");
        assert_eq!(s.wrap(0x1_0004_0010), 0x4010);
    }

    #[test]
    fn read_write_little_endian() {
        let mut s = Sandbox::new(0, 64);
        s.write(8, Width::Q, 0x1122_3344_5566_7788);
        assert_eq!(s.read_u8(8), 0x88);
        assert_eq!(s.read(8, Width::D), 0x5566_7788);
        assert_eq!(s.read(12, Width::D), 0x1122_3344);
        assert_eq!(s.read(8, Width::Q), 0x1122_3344_5566_7788);
    }

    #[test]
    fn boundary_crossing_access_wraps_per_byte() {
        let mut s = Sandbox::new(0, 16);
        s.write(14, Width::D, 0xAABB_CCDD);
        assert_eq!(s.read_u8(14), 0xDD);
        assert_eq!(s.read_u8(15), 0xCC);
        assert_eq!(s.read_u8(0), 0xBB, "third byte wrapped to offset 0");
        assert_eq!(s.read_u8(1), 0xAA);
        assert_eq!(s.read(14, Width::D), 0xAABB_CCDD);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        Sandbox::new(0, 1000);
    }

    #[test]
    fn load_zero_fills_tail_and_truncates() {
        let mut s = Sandbox::new(0, 16);
        s.overwrite(&[0xFF; 16]);
        s.load(&[1, 2, 3]);
        assert_eq!(s.read_u8(0), 1);
        assert_eq!(s.read_u8(2), 3);
        assert_eq!(s.read_u8(3), 0, "tail zero-filled");
        assert_eq!(s.read_u8(15), 0);
        s.load(&[9; 32]);
        assert_eq!(s.size(), 16, "longer input truncates");
        assert_eq!(s.read_u8(15), 9);
    }

    #[test]
    fn overwrite_replaces_contents() {
        let mut s = Sandbox::new(0, 8);
        s.overwrite(&[1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(s.read(0, Width::Q), 0x0807_0605_0403_0201);
    }
}
