//! The µx86 interpreter with observation hooks and taint propagation.

use crate::machine::{Checkpoint, Machine};
use crate::observer::{MemKind, Observer};
use crate::taint::{TaintCheckpoint, TaintEngine, TaintSet};
use amulet_isa::semantics::{alu, unary};
use amulet_isa::{FlatProgram, Instr, LoopKind, MemRef, Operand, TestInput, Width};
use amulet_isa::{Gpr, UnOp};
use std::fmt;

/// What a single [`Emulator::step`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepEvent {
    /// An ordinary instruction executed; PC advanced to the next index.
    Executed,
    /// A fence executed (architecturally a no-op; meaningful to contracts
    /// that model speculation barriers).
    Fence,
    /// A control-flow instruction resolved.
    Branch {
        /// Flat index of the branch.
        pc: usize,
        /// `true` for `Jcc`/`LOOPxx`, `false` for `JMP`.
        conditional: bool,
        /// Whether the branch was taken.
        taken: bool,
        /// Flat index of the taken successor.
        taken_target: usize,
        /// Flat index of the fall-through successor.
        fallthrough: usize,
    },
    /// `EXIT` reached; the machine did not advance.
    Exit,
}

/// Errors from [`Emulator::step`] / [`Emulator::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepError {
    /// The PC points outside the program (e.g. a wrong path fell off the
    /// end). Contract drivers treat this as the end of speculation.
    PcOutOfRange {
        /// The offending flat index.
        pc: usize,
    },
    /// An instruction has an operand shape the ISA forbids (e.g. an
    /// immediate destination). Unreachable for parser/generator output.
    MalformedInstr {
        /// The offending flat index.
        pc: usize,
    },
    /// `run` exceeded its step budget.
    StepLimit {
        /// The budget that was exhausted.
        max_steps: usize,
    },
}

impl fmt::Display for StepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StepError::PcOutOfRange { pc } => write!(f, "pc {pc} out of range"),
            StepError::MalformedInstr { pc } => write!(f, "malformed instruction at {pc}"),
            StepError::StepLimit { max_steps } => write!(f, "exceeded {max_steps} steps"),
        }
    }
}

impl std::error::Error for StepError {}

/// Result of a completed [`Emulator::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSummary {
    /// Instructions executed.
    pub steps: usize,
}

/// Combined machine + taint rollback point.
#[derive(Debug, Clone)]
pub struct EmuCheckpoint {
    machine: Checkpoint,
    taint: Option<TaintCheckpoint>,
}

/// The architectural interpreter.
///
/// Drives a [`Machine`] over a [`FlatProgram`], invoking [`Observer`]
/// callbacks and (optionally) propagating taint. Contract drivers sit on top:
/// they call [`Emulator::step`], inspect [`StepEvent::Branch`], and may
/// redirect `machine.pc` to explore mispredicted paths, using
/// [`Emulator::checkpoint`]/[`Emulator::restore`] to roll back.
#[derive(Debug)]
pub struct Emulator<'p> {
    flat: &'p FlatProgram,
    /// Architectural state (public: contract drivers redirect `pc`).
    pub machine: Machine,
    /// Optional taint engine, mirroring the machine.
    pub taint: Option<TaintEngine>,
}

impl<'p> Emulator<'p> {
    /// Creates an emulator with initial state from `input`, sandbox based at
    /// `sandbox_base`.
    pub fn new(flat: &'p FlatProgram, sandbox_base: u64, input: &TestInput) -> Self {
        Emulator {
            flat,
            machine: Machine::from_input(sandbox_base, input),
            taint: None,
        }
    }

    /// Attaches a taint engine (consuming builder style).
    pub fn with_taint(mut self, engine: TaintEngine) -> Self {
        self.taint = Some(engine);
        self
    }

    /// Assembles an emulator from pre-built parts — the reuse path: a
    /// machine reset via [`Machine::reset_from_input`] and an engine reset
    /// via [`TaintEngine::reset`] make this allocation-free.
    pub fn from_parts(flat: &'p FlatProgram, machine: Machine, taint: Option<TaintEngine>) -> Self {
        Emulator {
            flat,
            machine,
            taint,
        }
    }

    /// Disassembles the emulator into its reusable parts.
    pub fn into_parts(self) -> (Machine, Option<TaintEngine>) {
        (self.machine, self.taint)
    }

    /// The program being executed.
    pub fn program(&self) -> &'p FlatProgram {
        self.flat
    }

    /// Takes a combined machine+taint checkpoint.
    pub fn checkpoint(&self) -> EmuCheckpoint {
        EmuCheckpoint {
            machine: self.machine.checkpoint(),
            taint: self.taint.as_ref().map(|t| t.checkpoint()),
        }
    }

    /// Rolls back to a checkpoint (stack discipline).
    pub fn restore(&mut self, cp: &EmuCheckpoint) {
        self.machine.restore(&cp.machine);
        if let (Some(engine), Some(tcp)) = (self.taint.as_mut(), cp.taint.as_ref()) {
            engine.restore(tcp);
        }
    }

    /// Executes instructions until `EXIT` or `max_steps`.
    ///
    /// # Errors
    ///
    /// Returns [`StepError::StepLimit`] if the budget is exhausted, or any
    /// error from [`Emulator::step`].
    pub fn run(
        &mut self,
        obs: &mut impl Observer,
        max_steps: usize,
    ) -> Result<RunSummary, StepError> {
        for steps in 0..max_steps {
            if let StepEvent::Exit = self.step(obs)? {
                return Ok(RunSummary { steps });
            }
        }
        Err(StepError::StepLimit { max_steps })
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// See [`StepError`].
    pub fn step(&mut self, obs: &mut impl Observer) -> Result<StepEvent, StepError> {
        let pc = self.machine.pc;
        let instr = *self
            .flat
            .instrs
            .get(pc)
            .ok_or(StepError::PcOutOfRange { pc })?;
        obs.on_instr(pc, &instr);

        let malformed = StepError::MalformedInstr { pc };
        match instr {
            Instr::Mov { dst, src } => {
                match dst {
                    Operand::Reg(r, w) => {
                        let (v, t) = self.read_operand(&src, obs);
                        self.machine.write_reg(r, w, v);
                        self.write_reg_taint(r, w, t);
                    }
                    Operand::Mem(m) => {
                        let (v, t) = self.read_operand(&src, obs);
                        self.store(&m, v, t, obs);
                    }
                    Operand::Imm(_) => return Err(malformed),
                }
                self.machine.pc = pc + 1;
                Ok(StepEvent::Executed)
            }
            Instr::Alu { op, dst, src, .. } => {
                let width = dst
                    .width()
                    .or_else(|| src.width())
                    .ok_or(malformed.clone())?;
                let (dst_v, dst_t, dst_mem) = match dst {
                    Operand::Reg(r, w) => (self.machine.read_reg(r, w), self.reg_taint(r), None),
                    Operand::Mem(m) => {
                        let (v, t) = self.load(&m, obs);
                        (v, t, Some(m))
                    }
                    Operand::Imm(_) => return Err(malformed),
                };
                let (src_v, src_t) = self.read_operand(&src, obs);
                let r = alu(op, width, dst_v, src_v, self.machine.flags);

                let mut combined = self.taint_union(dst_t, src_t);
                if op.reads_flags() {
                    combined = self.taint_union(combined, self.flags_taint());
                }
                self.machine.flags = r.flags;
                if let Some(t) = self.taint.as_mut() {
                    t.set_flags_taint(combined);
                }
                if !op.discards_result() {
                    match (dst, dst_mem) {
                        (Operand::Reg(reg, w), _) => {
                            self.machine.write_reg(reg, w, r.value);
                            self.write_reg_taint(reg, w, combined);
                        }
                        (_, Some(m)) => self.store(&m, r.value, combined, obs),
                        _ => return Err(malformed),
                    }
                }
                self.machine.pc = pc + 1;
                Ok(StepEvent::Executed)
            }
            Instr::Un { op, dst, .. } => {
                let (val, mut t, width, mem) = match dst {
                    Operand::Reg(r, w) => (self.machine.read_reg(r, w), self.reg_taint(r), w, None),
                    Operand::Mem(m) => {
                        let (v, t) = self.load(&m, obs);
                        (v, t, m.width, Some(m))
                    }
                    Operand::Imm(_) => return Err(malformed),
                };
                let r = unary(op, width, val, self.machine.flags);
                if matches!(op, UnOp::Inc | UnOp::Dec) {
                    // CF is preserved, so the new flags partly depend on the
                    // old flags taint.
                    t = self.taint_union(t, self.flags_taint());
                }
                self.machine.flags = r.flags;
                if !matches!(op, UnOp::Not) {
                    if let Some(engine) = self.taint.as_mut() {
                        engine.set_flags_taint(t);
                    }
                }
                match (dst, mem) {
                    (Operand::Reg(reg, w), _) => {
                        self.machine.write_reg(reg, w, r.value);
                        self.write_reg_taint(reg, w, t);
                    }
                    (_, Some(m)) => self.store(&m, r.value, t, obs),
                    _ => return Err(malformed),
                }
                self.machine.pc = pc + 1;
                Ok(StepEvent::Executed)
            }
            Instr::Cmov { cond, dst, src } => {
                let Operand::Reg(r, w) = dst else {
                    return Err(malformed);
                };
                // CMOV always performs the source access, taken or not.
                let (src_v, src_t) = self.read_operand(&src, obs);
                let value = if cond.eval(self.machine.flags) {
                    src_v
                } else {
                    self.machine.read_reg(r, w)
                };
                self.machine.write_reg(r, w, value);
                let mut t = self.taint_union(src_t, self.reg_taint(r));
                t = self.taint_union(t, self.flags_taint());
                self.write_reg_taint_full(r, t);
                self.machine.pc = pc + 1;
                Ok(StepEvent::Executed)
            }
            Instr::Set { cond, dst } => {
                let value = cond.eval(self.machine.flags) as u64;
                let t = self.flags_taint();
                match dst {
                    Operand::Reg(r, w) => {
                        self.machine.write_reg(r, w, value);
                        self.write_reg_taint(r, w, t);
                    }
                    Operand::Mem(m) => self.store(&m, value, t, obs),
                    Operand::Imm(_) => return Err(malformed),
                }
                self.machine.pc = pc + 1;
                Ok(StepEvent::Executed)
            }
            Instr::Jcc { cond, target } => {
                let taken = cond.eval(self.machine.flags);
                let taken_target = self.flat.target_index(target);
                let fallthrough = pc + 1;
                if let Some(engine) = self.taint.as_mut() {
                    let ft = engine.flags_taint();
                    engine.mark_relevant(ft);
                }
                let next = if taken { taken_target } else { fallthrough };
                self.machine.pc = next;
                obs.on_branch(pc, taken, next);
                Ok(StepEvent::Branch {
                    pc,
                    conditional: true,
                    taken,
                    taken_target,
                    fallthrough,
                })
            }
            Instr::Jmp { target } => {
                let taken_target = self.flat.target_index(target);
                self.machine.pc = taken_target;
                obs.on_branch(pc, true, taken_target);
                Ok(StepEvent::Branch {
                    pc,
                    conditional: false,
                    taken: true,
                    taken_target,
                    fallthrough: pc + 1,
                })
            }
            Instr::Loop { kind, target } => {
                let rcx = self.machine.regs[Gpr::Rcx.index()].wrapping_sub(1);
                self.machine.regs[Gpr::Rcx.index()] = rcx;
                let zf = self.machine.flags.zf();
                let taken = rcx != 0
                    && match kind {
                        LoopKind::Loop => true,
                        LoopKind::Loope => zf,
                        LoopKind::Loopne => !zf,
                    };
                if let Some(engine) = self.taint.as_mut() {
                    let mut dep = engine.reg_taint(Gpr::Rcx.index());
                    if !matches!(kind, LoopKind::Loop) {
                        dep = engine.union(dep, engine.flags_taint());
                    }
                    engine.mark_relevant(dep);
                }
                let taken_target = self.flat.target_index(target);
                let fallthrough = pc + 1;
                let next = if taken { taken_target } else { fallthrough };
                self.machine.pc = next;
                obs.on_branch(pc, taken, next);
                Ok(StepEvent::Branch {
                    pc,
                    conditional: true,
                    taken,
                    taken_target,
                    fallthrough,
                })
            }
            Instr::Fence => {
                self.machine.pc = pc + 1;
                Ok(StepEvent::Fence)
            }
            Instr::Exit => Ok(StepEvent::Exit),
        }
    }

    fn reg_taint(&self, r: Gpr) -> TaintSet {
        self.taint
            .as_ref()
            .map(|t| t.reg_taint(r.index()))
            .unwrap_or_default()
    }

    fn flags_taint(&self) -> TaintSet {
        self.taint
            .as_ref()
            .map(|t| t.flags_taint())
            .unwrap_or_default()
    }

    /// Unions two taint sets in the engine's pool. With no engine attached
    /// every set is empty, so the identity cases cover it.
    fn taint_union(&mut self, a: TaintSet, b: TaintSet) -> TaintSet {
        if b.is_empty() || a == b {
            return a;
        }
        if a.is_empty() {
            return b;
        }
        match self.taint.as_mut() {
            Some(engine) => engine.union(a, b),
            None => unreachable!("non-empty taint sets require an engine"),
        }
    }

    fn write_reg_taint(&mut self, r: Gpr, w: Width, taint: TaintSet) {
        if let Some(engine) = self.taint.as_mut() {
            if matches!(w, Width::B | Width::W) {
                engine.merge_reg_taint(r.index(), taint);
            } else {
                engine.set_reg_taint(r.index(), taint);
            }
        }
    }

    fn write_reg_taint_full(&mut self, r: Gpr, taint: TaintSet) {
        if let Some(engine) = self.taint.as_mut() {
            engine.set_reg_taint(r.index(), taint);
        }
    }

    /// Reads an operand value (performing a load for memory operands).
    fn read_operand(&mut self, op: &Operand, obs: &mut impl Observer) -> (u64, TaintSet) {
        match op {
            Operand::Reg(r, w) => (self.machine.read_reg(*r, *w), self.reg_taint(*r)),
            Operand::Imm(v) => (*v as u64, TaintSet::default()),
            Operand::Mem(m) => self.load(m, obs),
        }
    }

    fn addr_of(&self, m: &MemRef) -> (u64, u64) {
        let addr = m.effective_addr(|r| self.machine.regs[r.index()]);
        let wrapped = self.machine.sandbox.wrap(addr);
        (addr, wrapped)
    }

    fn addr_taint(&mut self, m: &MemRef) -> TaintSet {
        let mut t = TaintSet::EMPTY;
        if let Some(engine) = self.taint.as_mut() {
            for r in m.addr_regs() {
                t = engine.union(t, engine.reg_taint(r.index()));
            }
        }
        t
    }

    fn load(&mut self, m: &MemRef, obs: &mut impl Observer) -> (u64, TaintSet) {
        let (addr, wrapped) = self.addr_of(m);
        let value = self.machine.read_mem(addr, m.width);
        obs.on_mem(MemKind::Load, wrapped, m.width, value);
        let mut value_taint = TaintSet::default();
        if self.taint.is_some() {
            let at = self.addr_taint(m);
            let off = wrapped.wrapping_sub(self.machine.sandbox.base());
            let engine = self.taint.as_mut().expect("checked above");
            engine.mark_relevant(at);
            value_taint = engine.mem_taint_range(off, m.width.bytes());
            if engine.config().observe_values {
                engine.mark_relevant(value_taint);
            }
        }
        (value, value_taint)
    }

    fn store(&mut self, m: &MemRef, value: u64, data_taint: TaintSet, obs: &mut impl Observer) {
        let (addr, wrapped) = self.addr_of(m);
        self.machine.write_mem(addr, m.width, value);
        obs.on_mem(MemKind::Store, wrapped, m.width, value);
        if self.taint.is_some() {
            let at = self.addr_taint(m);
            let off = wrapped.wrapping_sub(self.machine.sandbox.base());
            let engine = self.taint.as_mut().expect("checked above");
            engine.mark_relevant(at);
            if engine.config().observe_store_values {
                engine.mark_relevant(data_taint);
            }
            engine.set_mem_taint_range(off, m.width.bytes(), data_taint);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::{NullObserver, RecordingObserver};
    use crate::taint::TaintConfig;
    use amulet_isa::parse_program;

    fn run_src(src: &str, input: &TestInput) -> (Machine, RecordingObserver) {
        let flat = parse_program(src).unwrap().flatten();
        let mut emu = Emulator::new(&flat, 0x4000, input);
        let mut obs = RecordingObserver::default();
        emu.run(&mut obs, 10_000).unwrap();
        (emu.machine, obs)
    }

    #[test]
    fn arithmetic_and_moves() {
        let (m, _) = run_src(
            "MOV RAX, 10\nMOV RBX, 3\nSUB RAX, RBX\nEXIT",
            &TestInput::zeroed(1),
        );
        assert_eq!(m.regs[0], 7);
    }

    #[test]
    fn loads_and_stores_roundtrip() {
        let mut input = TestInput::zeroed(1);
        input.set_word(2, 0xABCD);
        let (m, obs) = run_src(
            "MOV RAX, 16\nMOV RBX, qword ptr [R14 + RAX]\nMOV qword ptr [R14 + 24], RBX\nEXIT",
            &input,
        );
        assert_eq!(m.regs[1], 0xABCD);
        assert_eq!(m.read_mem(0x4018, Width::Q), 0xABCD);
        assert_eq!(obs.mems.len(), 2);
        assert_eq!(obs.mems[0], (MemKind::Load, 0x4010, Width::Q, 0xABCD));
        assert_eq!(obs.mems[1], (MemKind::Store, 0x4018, Width::Q, 0xABCD));
    }

    #[test]
    fn conditional_branch_and_observation() {
        let src = "
            CMP RAX, 5
            JZ .taken
            MOV RBX, 1
            JMP .done
            .taken:
            MOV RBX, 2
            .done:
            EXIT";
        let mut input = TestInput::zeroed(1);
        input.regs[0] = 5;
        let (m, obs) = run_src(src, &input);
        assert_eq!(m.regs[1], 2);
        assert!(obs.branches.iter().any(|&(_, taken, _)| taken));

        input.regs[0] = 4;
        let (m, _) = run_src(src, &input);
        assert_eq!(m.regs[1], 1);
    }

    #[test]
    fn cmov_always_loads() {
        // Flags make the CMOV not-taken; the load must still be observed.
        let src = "
            CMP RAX, 1
            CMOVZ RBX, qword ptr [R14 + 8]
            EXIT";
        let mut input = TestInput::zeroed(1);
        input.regs[0] = 0;
        input.regs[1] = 0x99;
        input.set_word(1, 0x42);
        let (m, obs) = run_src(src, &input);
        assert_eq!(m.regs[1], 0x99, "not taken keeps old value");
        assert_eq!(obs.mems.len(), 1, "load happened anyway");
    }

    #[test]
    fn rmw_loads_and_stores() {
        let mut input = TestInput::zeroed(1);
        input.set_word(0, 0xF0);
        input.regs[5] = 0x0F; // RDI
        let (m, obs) = run_src("XOR qword ptr [R14 + 0], RDI\nEXIT", &input);
        assert_eq!(m.read_mem(0x4000, Width::Q), 0xFF);
        assert_eq!(obs.mems[0].0, MemKind::Load);
        assert_eq!(obs.mems[1].0, MemKind::Store);
    }

    #[test]
    fn loop_decrements_rcx() {
        let src = "
            .top:
            ADD RAX, 2
            LOOP .top
            EXIT";
        let mut input = TestInput::zeroed(1);
        input.regs[2] = 3; // RCX
        let (m, _) = run_src(src, &input);
        assert_eq!(m.regs[0], 6);
        assert_eq!(m.regs[2], 0);
    }

    #[test]
    fn out_of_sandbox_access_wraps() {
        let mut input = TestInput::zeroed(1);
        input.regs[0] = 0x1_0000_0008; // way out of the 4 KiB sandbox
        input.set_word(1, 0x77);
        let (m, obs) = run_src("MOV RBX, qword ptr [R14 + RAX]\nEXIT", &input);
        assert_eq!(m.regs[1], 0x77, "wrapped to offset 8");
        assert_eq!(obs.mems[0].1, 0x4008, "observer sees the wrapped address");
    }

    #[test]
    fn step_limit_reported() {
        let src = "
            .top:
            JMP .top
            EXIT";
        let flat = parse_program(src).unwrap().flatten();
        let mut emu = Emulator::new(&flat, 0x4000, &TestInput::zeroed(1));
        let e = emu.run(&mut NullObserver, 100).unwrap_err();
        assert_eq!(e, StepError::StepLimit { max_steps: 100 });
    }

    #[test]
    fn checkpoint_restore_speculative_path() {
        let src = "
            MOV qword ptr [R14 + 0], RAX
            EXIT";
        let flat = parse_program(src).unwrap().flatten();
        let mut input = TestInput::zeroed(1);
        input.regs[0] = 0xAA;
        let mut emu = Emulator::new(&flat, 0x4000, &input);
        let cp = emu.checkpoint();
        emu.step(&mut NullObserver).unwrap();
        assert_eq!(emu.machine.read_mem(0x4000, Width::Q), 0xAA);
        emu.restore(&cp);
        assert_eq!(emu.machine.read_mem(0x4000, Width::Q), 0);
        assert_eq!(emu.machine.pc, 0);
    }

    #[test]
    fn taint_flows_to_address_relevance() {
        // RAX (label 0) indexes a load -> relevant. RBX (label 1) only flows
        // into a stored value -> not relevant under CT-SEQ-style config.
        let src = "
            AND RAX, 0b111111111111
            MOV RDX, qword ptr [R14 + RAX]
            MOV qword ptr [R14 + 8], RBX
            EXIT";
        let flat = parse_program(src).unwrap().flatten();
        let input = TestInput::zeroed(1);
        let engine = TaintEngine::new(TaintConfig::default(), input.mem.len());
        let mut emu = Emulator::new(&flat, 0x4000, &input).with_taint(engine);
        emu.run(&mut NullObserver, 1000).unwrap();
        let rel = emu.taint.unwrap();
        let rel = rel.relevant();
        assert!(rel.contains(0), "RAX influences a load address");
        assert!(!rel.contains(1), "RBX only influences a stored value");
        assert!(rel.contains(14), "R14 is an address register");
    }

    #[test]
    fn taint_loaded_value_relevant_only_with_arch_config() {
        let src = "
            MOV RDX, qword ptr [R14 + 16]
            EXIT";
        let flat = parse_program(src).unwrap().flatten();
        let input = TestInput::zeroed(1);
        let word_label = 16 + 2; // offset 16 -> word 2

        let engine = TaintEngine::new(TaintConfig::default(), input.mem.len());
        let mut emu = Emulator::new(&flat, 0x4000, &input).with_taint(engine);
        emu.run(&mut NullObserver, 1000).unwrap();
        assert!(!emu.taint.unwrap().relevant().contains(word_label));

        let engine = TaintEngine::new(
            TaintConfig {
                observe_values: true,
                ..TaintConfig::default()
            },
            input.mem.len(),
        );
        let mut emu = Emulator::new(&flat, 0x4000, &input).with_taint(engine);
        emu.run(&mut NullObserver, 1000).unwrap();
        assert!(emu.taint.unwrap().relevant().contains(word_label));
    }

    #[test]
    fn taint_branch_marks_flag_sources() {
        let src = "
            CMP RBX, 7
            JZ .x
            .x:
            EXIT";
        let flat = parse_program(src).unwrap().flatten();
        let input = TestInput::zeroed(1);
        let engine = TaintEngine::new(TaintConfig::default(), input.mem.len());
        let mut emu = Emulator::new(&flat, 0x4000, &input).with_taint(engine);
        emu.run(&mut NullObserver, 1000).unwrap();
        let t = emu.taint.unwrap();
        assert!(t.relevant().contains(1), "RBX reaches the branch condition");
        assert!(!t.relevant().contains(0), "RAX is untouched");
    }

    #[test]
    fn taint_through_memory_dataflow() {
        // RBX -> mem[0] -> RDX -> load address: RBX becomes relevant.
        let src = "
            MOV qword ptr [R14 + 0], RBX
            MOV RDX, qword ptr [R14 + 0]
            AND RDX, 0b111111111111
            MOV RSI, qword ptr [R14 + RDX]
            EXIT";
        let flat = parse_program(src).unwrap().flatten();
        let input = TestInput::zeroed(1);
        let engine = TaintEngine::new(TaintConfig::default(), input.mem.len());
        let mut emu = Emulator::new(&flat, 0x4000, &input).with_taint(engine);
        emu.run(&mut NullObserver, 1000).unwrap();
        assert!(emu.taint.unwrap().relevant().contains(1));
    }
}
