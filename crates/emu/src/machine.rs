//! Architectural machine state with journal-based checkpointing.

use crate::sandbox::Sandbox;
use amulet_isa::{Flags, Gpr, TestInput, Width};

/// Architectural state: 16 GPRs, FLAGS, a program counter (flat instruction
/// index), and the memory sandbox.
///
/// Memory writes are journalled so the state can be rolled back to a
/// [`Checkpoint`] — how contracts simulate speculative wrong-path execution
/// and squash it again.
#[derive(Debug, Clone)]
pub struct Machine {
    /// General-purpose registers.
    pub regs: [u64; 16],
    /// Flag state.
    pub flags: Flags,
    /// Flat instruction index of the next instruction.
    pub pc: usize,
    /// The memory sandbox.
    pub sandbox: Sandbox,
    journal: Vec<(u64, u8)>,
}

/// A rollback point created by [`Machine::checkpoint`].
///
/// Checkpoints obey stack discipline: restoring a checkpoint invalidates all
/// checkpoints taken after it.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    regs: [u64; 16],
    flags: Flags,
    pc: usize,
    journal_len: usize,
}

impl Machine {
    /// Builds the initial machine state for a test case: registers and
    /// sandbox from `input`, `R14` pointed at the sandbox, `RSP` zeroed,
    /// PC at instruction 0.
    pub fn from_input(sandbox_base: u64, input: &TestInput) -> Self {
        let mut regs = input.regs;
        regs[Gpr::SANDBOX_BASE.index()] = sandbox_base;
        regs[Gpr::Rsp.index()] = 0;
        Machine {
            regs,
            flags: Flags::from_bits(input.flags_bits),
            pc: 0,
            sandbox: Sandbox::from_bytes(sandbox_base, &input.mem),
            journal: Vec::new(),
        }
    }

    /// Rewinds this machine to the initial state for a new test case,
    /// reusing the sandbox allocation when the geometry matches —
    /// behaviourally identical to [`Machine::from_input`] but allocation-free
    /// on the fuzzing hot path.
    pub fn reset_from_input(&mut self, sandbox_base: u64, input: &TestInput) {
        self.regs = input.regs;
        self.regs[Gpr::SANDBOX_BASE.index()] = sandbox_base;
        self.regs[Gpr::Rsp.index()] = 0;
        self.flags = Flags::from_bits(input.flags_bits);
        self.pc = 0;
        self.journal.clear();
        if self.sandbox.size() == input.mem.len() && self.sandbox.base() == sandbox_base {
            self.sandbox.overwrite(&input.mem);
        } else {
            self.sandbox = Sandbox::from_bytes(sandbox_base, &input.mem);
        }
    }

    /// Reads a register at a width (zero-extended to `u64`).
    pub fn read_reg(&self, reg: Gpr, width: Width) -> u64 {
        width.trunc(self.regs[reg.index()])
    }

    /// Writes a register at a width with x86 merge semantics.
    pub fn write_reg(&mut self, reg: Gpr, width: Width, value: u64) {
        let old = self.regs[reg.index()];
        self.regs[reg.index()] = width.merge_into(old, value);
    }

    /// Reads memory at a (wrapped) virtual address.
    pub fn read_mem(&self, addr: u64, width: Width) -> u64 {
        self.sandbox.read(addr, width)
    }

    /// Writes memory, journalling old bytes for rollback.
    pub fn write_mem(&mut self, addr: u64, width: Width, value: u64) {
        for i in 0..width.bytes() {
            let a = addr.wrapping_add(i);
            let old = self.sandbox.write_u8(a, (value >> (8 * i)) as u8);
            self.journal.push((a, old));
        }
    }

    /// Takes a checkpoint of registers, flags, PC and the journal position.
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            regs: self.regs,
            flags: self.flags,
            pc: self.pc,
            journal_len: self.journal.len(),
        }
    }

    /// Rolls back to a checkpoint, undoing journalled memory writes.
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint is stale (journal shorter than recorded),
    /// i.e. stack discipline was violated.
    pub fn restore(&mut self, cp: &Checkpoint) {
        assert!(
            self.journal.len() >= cp.journal_len,
            "stale checkpoint: journal already truncated"
        );
        while self.journal.len() > cp.journal_len {
            let (addr, old) = self.journal.pop().unwrap();
            self.sandbox.write_u8(addr, old);
        }
        self.regs = cp.regs;
        self.flags = cp.flags;
        self.pc = cp.pc;
    }

    /// Drops journal history (memoised writes become permanent).
    pub fn commit_journal(&mut self) {
        self.journal.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> Machine {
        Machine::from_input(0x4000, &TestInput::zeroed(1))
    }

    #[test]
    fn from_input_pins_r14() {
        let mut input = TestInput::zeroed(1);
        input.regs[Gpr::R14.index()] = 0xDEAD;
        let m = Machine::from_input(0x4000, &input);
        assert_eq!(m.regs[Gpr::R14.index()], 0x4000);
    }

    #[test]
    fn reg_width_merge() {
        let mut m = machine();
        m.write_reg(Gpr::Rax, Width::Q, 0x1122_3344_5566_7788);
        m.write_reg(Gpr::Rax, Width::B, 0xFF);
        assert_eq!(m.regs[0], 0x1122_3344_5566_77FF);
        m.write_reg(Gpr::Rax, Width::D, 0xAABB_CCDD);
        assert_eq!(m.regs[0], 0xAABB_CCDD, "32-bit write zero-extends");
        assert_eq!(m.read_reg(Gpr::Rax, Width::W), 0xCCDD);
    }

    #[test]
    fn checkpoint_restores_memory_and_regs() {
        let mut m = machine();
        m.write_mem(0x4000, Width::Q, 0x1111);
        let cp = m.checkpoint();
        m.write_mem(0x4000, Width::Q, 0x2222);
        m.write_reg(Gpr::Rbx, Width::Q, 9);
        m.pc = 42;
        m.restore(&cp);
        assert_eq!(m.read_mem(0x4000, Width::Q), 0x1111);
        assert_eq!(m.regs[Gpr::Rbx.index()], 0);
        assert_eq!(m.pc, 0);
    }

    #[test]
    fn nested_checkpoints_stack() {
        let mut m = machine();
        m.write_mem(0x4000, Width::B, 1);
        let cp1 = m.checkpoint();
        m.write_mem(0x4000, Width::B, 2);
        let cp2 = m.checkpoint();
        m.write_mem(0x4000, Width::B, 3);
        m.restore(&cp2);
        assert_eq!(m.read_mem(0x4000, Width::B), 2);
        m.restore(&cp1);
        assert_eq!(m.read_mem(0x4000, Width::B), 1);
    }

    #[test]
    #[should_panic(expected = "stale checkpoint")]
    fn stale_checkpoint_panics() {
        let mut m = machine();
        m.write_mem(0x4000, Width::B, 1);
        let cp_old = m.checkpoint();
        m.write_mem(0x4000, Width::B, 2);
        let cp_new = m.checkpoint();
        m.restore(&cp_old);
        m.restore(&cp_new); // out of order
    }
}
