//! Word-granular dynamic taint tracking.
//!
//! Each input element (16 GPRs + every 8-byte sandbox word) carries a unique
//! label. The engine propagates label sets through data flow as the emulator
//! executes, and records which labels reach *contract observations* (memory
//! addresses, branch decisions, and — for value-exposing contracts — loaded
//! values).
//!
//! The resulting `relevant` set is the engine's contract-preservation
//! certificate: mutating any input element whose label is **not** relevant
//! cannot change the contract trace. This is how AMuLeT-rs reproduces
//! Revizor's input boosting ("inputs can also be mutated, preserving only the
//! parts influencing the contract trace", §2.4).
//!
//! # Representation
//!
//! Taint values are sparse, interned [`TaintSet`]s (see
//! [`amulet_util::taintset`]): a 16-byte `Copy` value holding up to three
//! labels inline and spilling to a hash-consed [`TaintPool`] beyond that.
//! Word taints live in a flat `Vec<TaintSet>` indexed by word, with an
//! epoch stamp per word: a word whose stamp is stale implicitly carries its
//! initial self-label (`16 + w`), so engine construction and
//! [`TaintEngine::reset`] never touch the per-word storage.
//!
//! # Checkpointing
//!
//! Speculative-path rollback is journal-based: every word-taint write pushes
//! an undo record, and a [`TaintCheckpoint`] is a journal mark plus the
//! (inline, `Copy`) register/flag sets. `checkpoint()`/`restore()` therefore
//! cost O(words touched since the checkpoint), not O(sandbox) — the dense
//! predecessor cloned a `HashMap` of bitsets on every explored branch.
//! Checkpoints obey stack discipline, like [`crate::machine::Checkpoint`].
//!
//! The original dense engine survives as [`dense::DenseTaintEngine`], a
//! reference oracle: [`TaintEngine::with_dense_shadow`] mirrors every
//! mutation into it and cross-checks on each restore, and
//! [`TaintEngine::verify_shadow`] compares the complete state. Production
//! paths never construct the shadow.

use amulet_util::BitSet;
pub use amulet_util::{TaintPool, TaintSet};

/// What the observation clause exposes — controls which flows are marked
/// relevant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TaintConfig {
    /// Loaded values are observed (ARCH-SEQ).
    pub observe_values: bool,
    /// Stored values are observed (not used by the paper's contracts, but
    /// available for extensions).
    pub observe_store_values: bool,
}

/// One journalled word-taint write: `(word, previous set, previous stamp)`.
type UndoRecord = (u32, TaintSet, u32);

/// The taint state mirroring a [`crate::Machine`]'s architectural state.
#[derive(Debug, Clone)]
pub struct TaintEngine {
    cfg: TaintConfig,
    pool: TaintPool,
    reg: [TaintSet; 16],
    flags: TaintSet,
    /// Taint of 8-byte sandbox words; `mem[w]` is meaningful only when
    /// `stamp[w] == epoch`, otherwise the word carries its self-label.
    mem: Vec<TaintSet>,
    stamp: Vec<u32>,
    epoch: u32,
    /// Journal of word-taint writes since the engine was (re)set.
    undo: Vec<UndoRecord>,
    sandbox_size: usize,
    relevant: BitSet,
    /// Reference oracle (tests only): the dense engine, mirrored write for
    /// write.
    shadow: Option<Box<dense::DenseTaintEngine>>,
}

/// Rollback point for speculative-path exploration: a journal mark plus the
/// inline register/flag sets. Restoring obeys stack discipline.
#[derive(Debug, Clone)]
pub struct TaintCheckpoint {
    mark: usize,
    reg: [TaintSet; 16],
    flags: TaintSet,
    shadow: Option<Box<dense::DenseCheckpoint>>,
}

impl TaintEngine {
    /// Creates the initial taint state for a sandbox of `sandbox_size` bytes:
    /// register `i` carries label `i`, memory word `w` carries label `16+w`.
    pub fn new(cfg: TaintConfig, sandbox_size: usize) -> Self {
        let words = sandbox_size / 8;
        TaintEngine {
            cfg,
            pool: TaintPool::new(),
            reg: std::array::from_fn(|i| TaintSet::singleton(i as u32)),
            flags: TaintSet::EMPTY,
            mem: vec![TaintSet::EMPTY; words],
            stamp: vec![0; words],
            epoch: 1,
            undo: Vec::new(),
            sandbox_size,
            relevant: BitSet::new(),
            shadow: None,
        }
    }

    /// Rewinds the engine to its initial state for a (possibly new) sandbox
    /// size, reusing every allocation. Word taints are invalidated by an
    /// epoch bump — O(1) in the sandbox size — and the interned-set pool is
    /// retained, so set sharing carries over to the next run of the same
    /// program. Cost: O(registers), plus O(words) only when the sandbox size
    /// changes or the 32-bit epoch wraps.
    pub fn reset(&mut self, cfg: TaintConfig, sandbox_size: usize) {
        self.cfg = cfg;
        let words = sandbox_size / 8;
        if words != self.mem.len() {
            self.mem.clear();
            self.mem.resize(words, TaintSet::EMPTY);
            self.stamp.clear();
            self.stamp.resize(words, 0);
            self.epoch = 1;
        } else if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
        self.sandbox_size = sandbox_size;
        self.reg = std::array::from_fn(|i| TaintSet::singleton(i as u32));
        self.flags = TaintSet::EMPTY;
        self.undo.clear();
        self.relevant.clear();
        // Bound retained pool memory across long-lived reuse; spilled sets
        // are only referenced by live register/word entries, which the lines
        // above have all invalidated.
        if self.pool.spilled_sets() > (1 << 15) {
            self.pool.clear();
        }
        if let Some(shadow) = &mut self.shadow {
            **shadow = dense::DenseTaintEngine::new(sandbox_size);
        }
    }

    /// Attaches the dense reference oracle: every mutation is mirrored into
    /// a [`dense::DenseTaintEngine`] and cross-checked on rollback. Test
    /// harness only — it restores the dense engine's O(sandbox) costs.
    pub fn with_dense_shadow(mut self) -> Self {
        self.shadow = Some(Box::new(dense::DenseTaintEngine::new(self.sandbox_size)));
        self
    }

    /// The observation configuration.
    pub fn config(&self) -> TaintConfig {
        self.cfg
    }

    /// `true` if the dense reference oracle is attached.
    pub fn has_dense_shadow(&self) -> bool {
        self.shadow.is_some()
    }

    /// The interned-set pool (label iteration for diagnostics/tests).
    pub fn pool(&self) -> &TaintPool {
        &self.pool
    }

    /// The labels of a set, sorted ascending.
    pub fn labels<'a>(&'a self, set: &'a TaintSet) -> &'a [u32] {
        self.pool.labels(set)
    }

    /// Set union in this engine's pool.
    pub fn union(&mut self, a: TaintSet, b: TaintSet) -> TaintSet {
        self.pool.union(a, b)
    }

    /// Taint of a register.
    pub fn reg_taint(&self, reg_index: usize) -> TaintSet {
        self.reg[reg_index]
    }

    /// Overwrites a register's taint.
    pub fn set_reg_taint(&mut self, reg_index: usize, taint: TaintSet) {
        self.reg[reg_index] = taint;
        if self.shadow.is_some() {
            let bits = self.to_bitset(&taint);
            self.shadow_mut().set_reg_taint(reg_index, bits);
        }
    }

    /// Merges additional labels into a register's taint (for partial-width
    /// writes, where the old value survives in the high bits).
    pub fn merge_reg_taint(&mut self, reg_index: usize, taint: TaintSet) {
        self.reg[reg_index] = self.pool.union(self.reg[reg_index], taint);
        if self.shadow.is_some() {
            let bits = self.to_bitset(&taint);
            self.shadow_mut().merge_reg_taint(reg_index, &bits);
        }
    }

    /// Taint of the FLAGS register.
    pub fn flags_taint(&self) -> TaintSet {
        self.flags
    }

    /// Overwrites the FLAGS taint.
    pub fn set_flags_taint(&mut self, taint: TaintSet) {
        self.flags = taint;
        if self.shadow.is_some() {
            let bits = self.to_bitset(&taint);
            self.shadow_mut().set_flags_taint(bits);
        }
    }

    fn word_of(&self, sandbox_off: u64) -> usize {
        (sandbox_off as usize % self.sandbox_size) / 8
    }

    /// Taint of word `w` (its self-label until written this epoch).
    fn word_taint(&self, w: usize) -> TaintSet {
        if self.stamp[w] == self.epoch {
            self.mem[w]
        } else {
            TaintSet::singleton(16 + w as u32)
        }
    }

    /// Journalled write of word `w`'s taint.
    fn write_word(&mut self, w: usize, taint: TaintSet) {
        self.undo.push((w as u32, self.mem[w], self.stamp[w]));
        self.mem[w] = taint;
        self.stamp[w] = self.epoch;
    }

    /// Taint of the memory word containing sandbox offset `off` (initially
    /// its own label).
    pub fn mem_taint(&self, off: u64) -> TaintSet {
        self.word_taint(self.word_of(off))
    }

    /// Union of taints of all words touched by an access of `len` bytes at
    /// offset `off`.
    pub fn mem_taint_range(&mut self, off: u64, len: u64) -> TaintSet {
        let first = self.word_of(off);
        let last = self.word_of(off + len - 1);
        let t = self.word_taint(first);
        if last == first {
            t
        } else {
            let u = self.word_taint(last);
            self.pool.union(t, u)
        }
    }

    /// Stores `taint` into all words touched by an access of `len` bytes at
    /// offset `off`. Partial words merge (old taint survives in the
    /// untouched bytes), full words replace.
    pub fn set_mem_taint_range(&mut self, off: u64, len: u64, taint: TaintSet) {
        let first = self.word_of(off);
        let last = self.word_of(off + len - 1);
        let full_word = len == 8 && off.is_multiple_of(8);
        let words = [first, last];
        for &w in &words[..1 + (first != last) as usize] {
            if full_word {
                self.write_word(w, taint);
            } else {
                let merged = self.pool.union(self.word_taint(w), taint);
                self.write_word(w, merged);
            }
        }
        if self.shadow.is_some() {
            let bits = self.to_bitset(&taint);
            self.shadow_mut().set_mem_taint_range(off, len, &bits);
        }
    }

    /// Marks labels as reaching a contract observation.
    pub fn mark_relevant(&mut self, taint: TaintSet) {
        if taint.is_empty() {
            return;
        }
        // Split borrows: the label slice lives in the pool, the destination
        // bitset next to it.
        let (pool, relevant) = (&self.pool, &mut self.relevant);
        for &label in pool.labels(&taint) {
            relevant.insert(label as usize);
        }
        if self.shadow.is_some() {
            let bits = self.to_bitset(&taint);
            self.shadow_mut().mark_relevant(&bits);
        }
    }

    /// Labels that reached observations so far.
    pub fn relevant(&self) -> &BitSet {
        &self.relevant
    }

    /// Takes a rollback point (the `relevant` set is monotonic and is *not*
    /// part of the checkpoint — observations on explored speculative paths
    /// count).
    pub fn checkpoint(&self) -> TaintCheckpoint {
        TaintCheckpoint {
            mark: self.undo.len(),
            reg: self.reg,
            flags: self.flags,
            shadow: self.shadow.as_ref().map(|s| Box::new(s.checkpoint())),
        }
    }

    /// Rolls back register/flag/memory taint to a checkpoint by unwinding
    /// the write journal — O(words written since the checkpoint).
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint is stale (journal shorter than its mark),
    /// i.e. stack discipline was violated.
    pub fn restore(&mut self, cp: &TaintCheckpoint) {
        assert!(
            self.undo.len() >= cp.mark,
            "stale taint checkpoint: journal already truncated"
        );
        while self.undo.len() > cp.mark {
            let (w, set, stamp) = self.undo.pop().unwrap();
            self.mem[w as usize] = set;
            self.stamp[w as usize] = stamp;
        }
        self.reg = cp.reg;
        self.flags = cp.flags;
        if let (Some(shadow), Some(dense_cp)) = (self.shadow.as_mut(), cp.shadow.as_ref()) {
            shadow.restore(dense_cp);
        }
        self.assert_shadow_regs_agree();
    }

    /// Converts a sparse set to a dense bitset (oracle mirroring and tests).
    pub fn to_bitset(&self, taint: &TaintSet) -> BitSet {
        self.pool
            .labels(taint)
            .iter()
            .map(|&l| l as usize)
            .collect()
    }

    fn shadow_mut(&mut self) -> &mut dense::DenseTaintEngine {
        self.shadow.as_mut().expect("shadow checked by caller")
    }

    /// Cheap per-restore oracle check: registers, flags and the relevant set
    /// must agree with the dense shadow. No-op without a shadow.
    fn assert_shadow_regs_agree(&self) {
        let Some(shadow) = &self.shadow else { return };
        for i in 0..16 {
            assert_eq!(
                self.to_bitset(&self.reg[i]),
                *shadow.reg_taint(i),
                "register {i} taint diverged from the dense oracle"
            );
        }
        assert_eq!(
            self.to_bitset(&self.flags),
            *shadow.flags_taint(),
            "flags taint diverged from the dense oracle"
        );
        assert_eq!(
            self.relevant,
            *shadow.relevant(),
            "relevant set diverged from the dense oracle"
        );
    }

    /// Full oracle check: registers, flags, the relevant set and **every**
    /// memory word must agree with the dense shadow.
    ///
    /// # Panics
    ///
    /// Panics on any divergence, or if no shadow is attached.
    pub fn verify_shadow(&self) {
        let shadow = self
            .shadow
            .as_ref()
            .expect("verify_shadow requires with_dense_shadow");
        self.assert_shadow_regs_agree();
        for w in 0..self.mem.len() {
            assert_eq!(
                self.to_bitset(&self.word_taint(w)),
                shadow.mem_taint((w * 8) as u64),
                "word {w} taint diverged from the dense oracle"
            );
        }
    }
}

pub mod dense {
    //! The original dense taint engine, retained as a reference oracle.
    //!
    //! Representation: one [`BitSet`] per register plus a `HashMap` of word
    //! bitsets, with full-map clone checkpoints. Semantically identical to
    //! [`TaintEngine`](super::TaintEngine) and asymptotically worse in every
    //! dimension — which is exactly what makes it a trustworthy oracle for
    //! the sparse engine's differential tests.

    use amulet_util::BitSet;
    use std::collections::HashMap;

    /// The dense reference engine (see the module docs).
    #[derive(Debug, Clone)]
    pub struct DenseTaintEngine {
        reg: [BitSet; 16],
        flags: BitSet,
        mem: HashMap<usize, BitSet>,
        sandbox_size: usize,
        relevant: BitSet,
    }

    /// Full-state rollback point for [`DenseTaintEngine`].
    #[derive(Debug, Clone)]
    pub struct DenseCheckpoint {
        reg: [BitSet; 16],
        flags: BitSet,
        mem: HashMap<usize, BitSet>,
    }

    impl DenseTaintEngine {
        /// Initial state: register `i` tainted `{i}`, word `w` tainted
        /// `{16+w}` (implicitly, via map absence).
        pub fn new(sandbox_size: usize) -> Self {
            let reg = std::array::from_fn(|i| {
                let mut s = BitSet::new();
                s.insert(i);
                s
            });
            DenseTaintEngine {
                reg,
                flags: BitSet::new(),
                mem: HashMap::new(),
                sandbox_size,
                relevant: BitSet::new(),
            }
        }

        /// Taint of a register.
        pub fn reg_taint(&self, reg_index: usize) -> &BitSet {
            &self.reg[reg_index]
        }

        /// Overwrites a register's taint.
        pub fn set_reg_taint(&mut self, reg_index: usize, taint: BitSet) {
            self.reg[reg_index] = taint;
        }

        /// Merges labels into a register's taint.
        pub fn merge_reg_taint(&mut self, reg_index: usize, taint: &BitSet) {
            self.reg[reg_index].union_with(taint);
        }

        /// Taint of the FLAGS register.
        pub fn flags_taint(&self) -> &BitSet {
            &self.flags
        }

        /// Overwrites the FLAGS taint.
        pub fn set_flags_taint(&mut self, taint: BitSet) {
            self.flags = taint;
        }

        fn word_of(&self, sandbox_off: u64) -> usize {
            (sandbox_off as usize % self.sandbox_size) / 8
        }

        /// Taint of the word containing `off` (initially its own label).
        pub fn mem_taint(&self, off: u64) -> BitSet {
            let w = self.word_of(off);
            self.mem.get(&w).cloned().unwrap_or_else(|| {
                let mut s = BitSet::new();
                s.insert(16 + w);
                s
            })
        }

        /// Union of word taints over an access of `len` bytes at `off`.
        pub fn mem_taint_range(&self, off: u64, len: u64) -> BitSet {
            let mut t = BitSet::new();
            let first = self.word_of(off);
            let last = self.word_of(off + len - 1);
            for w in [first, last] {
                t.union_with(&self.mem_taint((w * 8) as u64));
            }
            t
        }

        /// Stores `taint` over an access of `len` bytes at `off` (partial
        /// words merge, full words replace).
        pub fn set_mem_taint_range(&mut self, off: u64, len: u64, taint: &BitSet) {
            let first = self.word_of(off);
            let last = self.word_of(off + len - 1);
            let full_word = len == 8 && off.is_multiple_of(8);
            let words = [first, last];
            for &w in &words[..1 + (first != last) as usize] {
                if full_word {
                    self.mem.insert(w, taint.clone());
                } else {
                    let mut merged = self.mem_taint((w * 8) as u64);
                    merged.union_with(taint);
                    self.mem.insert(w, merged);
                }
            }
        }

        /// Marks labels as reaching a contract observation.
        pub fn mark_relevant(&mut self, taint: &BitSet) {
            self.relevant.union_with(taint);
        }

        /// Labels that reached observations so far.
        pub fn relevant(&self) -> &BitSet {
            &self.relevant
        }

        /// Takes a full-state rollback point (O(sandbox)).
        pub fn checkpoint(&self) -> DenseCheckpoint {
            DenseCheckpoint {
                reg: self.reg.clone(),
                flags: self.flags.clone(),
                mem: self.mem.clone(),
            }
        }

        /// Rolls back to a checkpoint (O(sandbox)).
        pub fn restore(&mut self, cp: &DenseCheckpoint) {
            self.reg = cp.reg.clone();
            self.flags = cp.flags.clone();
            self.mem = cp.mem.clone();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> TaintEngine {
        TaintEngine::new(TaintConfig::default(), 4096)
    }

    fn labels_of(t: &TaintEngine, s: TaintSet) -> Vec<u32> {
        t.labels(&s).to_vec()
    }

    #[test]
    fn initial_labels_are_self() {
        let t = engine();
        assert_eq!(labels_of(&t, t.reg_taint(3)), vec![3]);
        assert_eq!(labels_of(&t, t.mem_taint(0)), vec![16]);
        assert_eq!(labels_of(&t, t.mem_taint(8)), vec![17]);
        assert_eq!(labels_of(&t, t.mem_taint(15)), vec![17]);
    }

    #[test]
    fn mem_range_spans_words() {
        let mut t = engine();
        let span = t.mem_taint_range(6, 4); // bytes 6..10 touch words 0 and 1
        assert_eq!(labels_of(&t, span), vec![16, 17]);
        let single = t.mem_taint_range(8, 8);
        assert_eq!(labels_of(&t, single), vec![17]);
    }

    #[test]
    fn full_word_store_replaces_partial_merges() {
        let mut t = engine();
        t.set_mem_taint_range(8, 8, TaintSet::singleton(5));
        assert_eq!(labels_of(&t, t.mem_taint(8)), vec![5]);
        // Partial store merges with the existing word taint.
        t.set_mem_taint_range(10, 2, TaintSet::singleton(6));
        assert_eq!(labels_of(&t, t.mem_taint(8)), vec![5, 6]);
    }

    #[test]
    fn relevant_survives_restore() {
        let mut t = engine();
        let cp = t.checkpoint();
        let s = TaintSet::singleton(2);
        t.set_reg_taint(0, s);
        t.mark_relevant(s);
        t.restore(&cp);
        assert_eq!(
            labels_of(&t, t.reg_taint(0)),
            vec![0],
            "register taint rolled back"
        );
        assert!(t.relevant().contains(2), "relevance is monotonic");
    }

    #[test]
    fn offsets_wrap_modulo_sandbox() {
        let t = engine();
        assert_eq!(
            labels_of(&t, t.mem_taint(4096)),
            labels_of(&t, t.mem_taint(0))
        );
    }

    #[test]
    fn checkpoint_restore_unwinds_word_writes() {
        let mut t = engine();
        t.set_mem_taint_range(0, 8, TaintSet::singleton(9));
        let cp = t.checkpoint();
        t.set_mem_taint_range(0, 8, TaintSet::singleton(1));
        t.set_mem_taint_range(64, 8, TaintSet::singleton(2));
        t.restore(&cp);
        assert_eq!(labels_of(&t, t.mem_taint(0)), vec![9], "pre-cp write kept");
        assert_eq!(
            labels_of(&t, t.mem_taint(64)),
            vec![16 + 8],
            "untouched word back to its self-label"
        );
    }

    #[test]
    fn nested_checkpoints_stack() {
        let mut t = engine();
        let cp1 = t.checkpoint();
        t.set_mem_taint_range(0, 8, TaintSet::singleton(1));
        let cp2 = t.checkpoint();
        t.set_mem_taint_range(0, 8, TaintSet::singleton(2));
        t.restore(&cp2);
        assert_eq!(labels_of(&t, t.mem_taint(0)), vec![1]);
        t.restore(&cp1);
        assert_eq!(labels_of(&t, t.mem_taint(0)), vec![16]);
    }

    #[test]
    #[should_panic(expected = "stale taint checkpoint")]
    fn stale_checkpoint_panics() {
        let mut t = engine();
        let cp_old = t.checkpoint();
        t.set_mem_taint_range(0, 8, TaintSet::singleton(1));
        let cp_new = t.checkpoint();
        t.restore(&cp_old);
        t.restore(&cp_new); // out of order
    }

    #[test]
    fn reset_restores_self_labels_in_place() {
        let mut t = engine();
        t.set_reg_taint(0, TaintSet::singleton(7));
        t.set_mem_taint_range(0, 8, TaintSet::singleton(7));
        t.mark_relevant(TaintSet::singleton(7));
        let cfg = t.config();
        t.reset(cfg, 4096);
        assert_eq!(labels_of(&t, t.reg_taint(0)), vec![0]);
        assert_eq!(labels_of(&t, t.mem_taint(0)), vec![16]);
        assert!(t.relevant().is_empty());
        // Size changes rebuild the word map.
        t.reset(cfg, 8192);
        assert_eq!(labels_of(&t, t.mem_taint(8192 - 8)), vec![16 + 1023]);
    }

    #[test]
    fn shadow_oracle_agrees_on_a_mixed_workload() {
        let mut t = TaintEngine::new(TaintConfig::default(), 4096).with_dense_shadow();
        t.set_mem_taint_range(0, 8, TaintSet::singleton(3));
        let m = t.mem_taint_range(0, 8);
        t.set_reg_taint(2, m);
        let cp = t.checkpoint();
        let u = t.union(t.reg_taint(2), TaintSet::singleton(8));
        t.set_mem_taint_range(10, 2, u);
        t.merge_reg_taint(2, TaintSet::singleton(9));
        t.set_flags_taint(t.reg_taint(2));
        t.mark_relevant(u);
        t.verify_shadow();
        t.restore(&cp);
        t.verify_shadow();
    }
}
