//! Word-granular dynamic taint tracking.
//!
//! Each input element (16 GPRs + every 8-byte sandbox word) carries a unique
//! label. The engine propagates label sets through data flow as the emulator
//! executes, and records which labels reach *contract observations* (memory
//! addresses, branch decisions, and — for value-exposing contracts — loaded
//! values).
//!
//! The resulting `relevant` set is the engine's contract-preservation
//! certificate: mutating any input element whose label is **not** relevant
//! cannot change the contract trace. This is how AMuLeT-rs reproduces
//! Revizor's input boosting ("inputs can also be mutated, preserving only the
//! parts influencing the contract trace", §2.4).

use amulet_util::BitSet;
use std::collections::HashMap;

/// A set of taint labels.
pub type TaintSet = BitSet;

/// What the observation clause exposes — controls which flows are marked
/// relevant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TaintConfig {
    /// Loaded values are observed (ARCH-SEQ).
    pub observe_values: bool,
    /// Stored values are observed (not used by the paper's contracts, but
    /// available for extensions).
    pub observe_store_values: bool,
}

/// The taint state mirroring a [`crate::Machine`]'s architectural state.
#[derive(Debug, Clone)]
pub struct TaintEngine {
    cfg: TaintConfig,
    reg: [TaintSet; 16],
    flags: TaintSet,
    /// Taint of 8-byte sandbox words, keyed by word index. Words absent from
    /// the map carry their initial self-label.
    mem: HashMap<usize, TaintSet>,
    sandbox_size: usize,
    relevant: BitSet,
}

/// Rollback point for speculative-path exploration.
#[derive(Debug, Clone)]
pub struct TaintCheckpoint {
    reg: [TaintSet; 16],
    flags: TaintSet,
    mem: HashMap<usize, TaintSet>,
}

impl TaintEngine {
    /// Creates the initial taint state for a sandbox of `sandbox_size` bytes:
    /// register `i` carries label `i`, memory word `w` carries label `16+w`.
    pub fn new(cfg: TaintConfig, sandbox_size: usize) -> Self {
        let reg = std::array::from_fn(|i| {
            let mut s = BitSet::new();
            s.insert(i);
            s
        });
        TaintEngine {
            cfg,
            reg,
            flags: BitSet::new(),
            mem: HashMap::new(),
            sandbox_size,
            relevant: BitSet::new(),
        }
    }

    /// The observation configuration.
    pub fn config(&self) -> TaintConfig {
        self.cfg
    }

    /// Taint of a register.
    pub fn reg_taint(&self, reg_index: usize) -> &TaintSet {
        &self.reg[reg_index]
    }

    /// Overwrites a register's taint.
    pub fn set_reg_taint(&mut self, reg_index: usize, taint: TaintSet) {
        self.reg[reg_index] = taint;
    }

    /// Merges additional labels into a register's taint (for partial-width
    /// writes, where the old value survives in the high bits).
    pub fn merge_reg_taint(&mut self, reg_index: usize, taint: &TaintSet) {
        self.reg[reg_index].union_with(taint);
    }

    /// Taint of the FLAGS register.
    pub fn flags_taint(&self) -> &TaintSet {
        &self.flags
    }

    /// Overwrites the FLAGS taint.
    pub fn set_flags_taint(&mut self, taint: TaintSet) {
        self.flags = taint;
    }

    fn word_of(&self, sandbox_off: u64) -> usize {
        (sandbox_off as usize % self.sandbox_size) / 8
    }

    /// Taint of the memory word containing sandbox offset `off` (initially
    /// its own label).
    pub fn mem_taint(&self, off: u64) -> TaintSet {
        let w = self.word_of(off);
        self.mem.get(&w).cloned().unwrap_or_else(|| {
            let mut s = BitSet::new();
            s.insert(16 + w);
            s
        })
    }

    /// Union of taints of all words touched by an access of `len` bytes at
    /// offset `off`.
    pub fn mem_taint_range(&self, off: u64, len: u64) -> TaintSet {
        let mut t = BitSet::new();
        let first = self.word_of(off);
        let last = self.word_of(off + len - 1);
        for w in [first, last] {
            t.union_with(&self.mem_taint((w * 8) as u64));
        }
        t
    }

    /// Stores `taint` into all words touched by an access of `len` bytes at
    /// offset `off`. Partial words merge (old taint survives in the
    /// untouched bytes), full words replace.
    pub fn set_mem_taint_range(&mut self, off: u64, len: u64, taint: &TaintSet) {
        let first = self.word_of(off);
        let last = self.word_of(off + len - 1);
        let full_word = len == 8 && off.is_multiple_of(8);
        let words = [first, last];
        for &w in &words[..1 + (first != last) as usize] {
            if full_word {
                self.mem.insert(w, taint.clone());
            } else {
                let mut merged = self.mem_taint((w * 8) as u64);
                merged.union_with(taint);
                self.mem.insert(w, merged);
            }
        }
    }

    /// Marks labels as reaching a contract observation.
    pub fn mark_relevant(&mut self, taint: &TaintSet) {
        self.relevant.union_with(taint);
    }

    /// Labels that reached observations so far.
    pub fn relevant(&self) -> &BitSet {
        &self.relevant
    }

    /// Takes a rollback point (the `relevant` set is monotonic and is *not*
    /// part of the checkpoint — observations on explored speculative paths
    /// count).
    pub fn checkpoint(&self) -> TaintCheckpoint {
        TaintCheckpoint {
            reg: self.reg.clone(),
            flags: self.flags.clone(),
            mem: self.mem.clone(),
        }
    }

    /// Rolls back register/flag/memory taint to a checkpoint.
    pub fn restore(&mut self, cp: &TaintCheckpoint) {
        self.reg = cp.reg.clone();
        self.flags = cp.flags.clone();
        self.mem = cp.mem.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> TaintEngine {
        TaintEngine::new(TaintConfig::default(), 4096)
    }

    #[test]
    fn initial_labels_are_self() {
        let t = engine();
        assert!(t.reg_taint(3).contains(3));
        assert_eq!(t.reg_taint(3).len(), 1);
        assert!(t.mem_taint(0).contains(16));
        assert!(t.mem_taint(8).contains(17));
        assert!(t.mem_taint(15).contains(17));
    }

    #[test]
    fn mem_range_spans_words() {
        let t = engine();
        let span = t.mem_taint_range(6, 4); // bytes 6..10 touch words 0 and 1
        assert!(span.contains(16) && span.contains(17));
        let single = t.mem_taint_range(8, 8);
        assert!(single.contains(17) && !single.contains(16));
    }

    #[test]
    fn full_word_store_replaces_partial_merges() {
        let mut t = engine();
        let mut data = BitSet::new();
        data.insert(5);
        t.set_mem_taint_range(8, 8, &data);
        assert_eq!(t.mem_taint(8).iter().collect::<Vec<_>>(), vec![5]);
        // Partial store merges with the existing word taint.
        let mut data2 = BitSet::new();
        data2.insert(6);
        t.set_mem_taint_range(10, 2, &data2);
        let m = t.mem_taint(8);
        assert!(m.contains(5) && m.contains(6));
    }

    #[test]
    fn relevant_survives_restore() {
        let mut t = engine();
        let cp = t.checkpoint();
        let mut s = BitSet::new();
        s.insert(2);
        t.set_reg_taint(0, s.clone());
        t.mark_relevant(&s);
        t.restore(&cp);
        assert!(t.reg_taint(0).contains(0), "register taint rolled back");
        assert!(t.relevant().contains(2), "relevance is monotonic");
    }

    #[test]
    fn offsets_wrap_modulo_sandbox() {
        let t = engine();
        assert_eq!(
            t.mem_taint(4096).iter().collect::<Vec<_>>(),
            t.mem_taint(0).iter().collect::<Vec<_>>()
        );
    }
}
