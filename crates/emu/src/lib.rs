//! The architectural emulator — AMuLeT-rs's substitute for Unicorn.
//!
//! The paper's leakage model executes test cases on the Unicorn CPU emulator
//! with instrumentation hooks that record ISA-level observations (§2.4).
//! This crate provides the same capability for µx86:
//!
//! - [`Sandbox`]: the test-case memory sandbox. All accesses are wrapped into
//!   the sandbox (power-of-two sized), the Rust analogue of Revizor's
//!   address-masking instrumentation.
//! - [`Machine`]: architectural state (GPRs, FLAGS, PC, sandbox) with a write
//!   journal enabling cheap checkpoints — used by contracts to explore
//!   mispredicted paths and roll back (the *execution clause*).
//! - [`Emulator`]: the instruction interpreter, with [`Observer`] hooks for
//!   contract observation clauses.
//! - [`TaintEngine`]: word-granular dynamic information-flow tracking that
//!   reports which input elements influence contract observations. This
//!   powers contract-preserving input mutation ("boosting"): mutating only
//!   unobserved elements provably preserves the contract trace.
//!
//! # Examples
//!
//! ```
//! use amulet_isa::{parse_program, TestInput};
//! use amulet_emu::{Emulator, NullObserver};
//!
//! let prog = parse_program("MOV RAX, 7\nADD RAX, 8\nEXIT").unwrap().flatten();
//! let input = TestInput::zeroed(1);
//! let mut emu = Emulator::new(&prog, 0x4000, &input);
//! emu.run(&mut NullObserver, 1000).unwrap();
//! assert_eq!(emu.machine.regs[0], 15);
//! ```

pub mod exec;
pub mod machine;
pub mod observer;
pub mod sandbox;
pub mod taint;

pub use exec::{Emulator, RunSummary, StepError, StepEvent};
pub use machine::{Checkpoint, Machine};
pub use observer::{MemKind, NullObserver, Observer, RecordingObserver};
pub use sandbox::Sandbox;
pub use taint::{TaintConfig, TaintEngine, TaintPool, TaintSet};

/// Default sandbox base virtual address used across the workspace.
///
/// Arbitrary, but chosen so sandbox offsets look like the addresses in the
/// paper's figures (small offsets above a round base).
pub const SANDBOX_BASE_VA: u64 = 0x4000;
