//! Observation hooks: how contracts watch an execution.

use amulet_isa::{Instr, Width};

/// Whether a memory observation was a read or a write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemKind {
    /// A load (including the read half of an RMW).
    Load,
    /// A store (including the write half of an RMW).
    Store,
}

/// Callbacks invoked by the emulator as it executes.
///
/// Contracts implement this to build contract traces; the default methods do
/// nothing so implementations override only what their observation clause
/// exposes.
pub trait Observer {
    /// An instruction is about to execute at flat index `pc`.
    fn on_instr(&mut self, pc: usize, instr: &Instr) {
        let _ = (pc, instr);
    }

    /// A memory access of `width` at (wrapped) virtual address `addr`
    /// transferred `value`.
    fn on_mem(&mut self, kind: MemKind, addr: u64, width: Width, value: u64) {
        let _ = (kind, addr, width, value);
    }

    /// A conditional or unconditional branch at `pc` resolved: `taken`, with
    /// the flat index executed next.
    fn on_branch(&mut self, pc: usize, taken: bool, next: usize) {
        let _ = (pc, taken, next);
    }
}

/// An observer that ignores everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl Observer for NullObserver {}

/// Records every event — handy in tests and for debugging contracts.
#[derive(Debug, Default, Clone)]
pub struct RecordingObserver {
    /// Executed flat instruction indices in order.
    pub pcs: Vec<usize>,
    /// Memory events in order.
    pub mems: Vec<(MemKind, u64, Width, u64)>,
    /// Branch events in order: (pc, taken, next).
    pub branches: Vec<(usize, bool, usize)>,
}

impl Observer for RecordingObserver {
    fn on_instr(&mut self, pc: usize, _instr: &Instr) {
        self.pcs.push(pc);
    }

    fn on_mem(&mut self, kind: MemKind, addr: u64, width: Width, value: u64) {
        self.mems.push((kind, addr, width, value));
    }

    fn on_branch(&mut self, pc: usize, taken: bool, next: usize) {
        self.branches.push((pc, taken, next));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_observer_accumulates() {
        let mut r = RecordingObserver::default();
        r.on_instr(0, &Instr::Exit);
        r.on_mem(MemKind::Load, 0x40, Width::Q, 7);
        r.on_branch(3, true, 9);
        assert_eq!(r.pcs, vec![0]);
        assert_eq!(r.mems.len(), 1);
        assert_eq!(r.branches, vec![(3, true, 9)]);
    }
}
