//! STT — Speculative Taint Tracking (Yu et al., MICRO 2019), Futuristic.
//!
//! Data returned by speculative *access* loads is tainted; taint propagates
//! through dataflow; *transmitters* (instructions forming addresses from
//! tainted data) are blocked until their sources untaint, which happens when
//! the producing load reaches the visibility point. Untainted speculative
//! loads may change cache state freely — STT's guarantee is that
//! *speculatively accessed data* never reaches a side channel, matching the
//! ARCH-SEQ contract (§4.1).
//!
//! The known vulnerability AMuLeT re-found (KV3, previously shown by DOLMA):
//! the gem5 implementation lets **tainted stores execute their address
//! translation**, installing a D-TLB entry whose page number encodes
//! speculatively accessed data. `store_tlb_bug: false` applies the
//! DOLMA-style fix (delay tainted stores).

use amulet_sim::{Defense, LoadCtx, LoadPlan, StoreCtx, StorePlan};

/// The STT defense policy.
#[derive(Debug, Clone, Copy)]
pub struct Stt {
    /// KV3: tainted stores still execute and access the TLB.
    pub store_tlb_bug: bool,
}

impl Stt {
    /// The published implementation (KV3 present).
    pub fn published() -> Self {
        Stt {
            store_tlb_bug: true,
        }
    }

    /// With the DOLMA-style fix: tainted stores are delayed.
    pub fn patched() -> Self {
        Stt {
            store_tlb_bug: false,
        }
    }
}

impl Defense for Stt {
    fn name(&self) -> &'static str {
        if self.store_tlb_bug {
            "STT"
        } else {
            "STT-Patched"
        }
    }

    fn needs_taint(&self) -> bool {
        true
    }

    fn plan_load(&mut self, ctx: &LoadCtx) -> LoadPlan {
        if !ctx.safe && ctx.tainted_addr {
            // A tainted-address load is a transmitter: block until the
            // source untaints (its producer load reaches visibility).
            return LoadPlan::delayed();
        }
        // Untainted loads execute and fill normally, even speculatively.
        LoadPlan::baseline()
    }

    fn plan_store(&mut self, ctx: &StoreCtx) -> StorePlan {
        if !ctx.safe && ctx.tainted_addr {
            if self.store_tlb_bug {
                // KV3: the tainted store executes anyway, translating its
                // address and installing a D-TLB entry.
                return StorePlan::baseline();
            }
            return StorePlan::delayed();
        }
        StorePlan::baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gadgets::{self, payload};
    use amulet_isa::parse_program;
    use amulet_sim::{DebugEvent, SimConfig, Simulator};

    fn sim_with(defense: Stt, pages: usize) -> Simulator {
        let cfg = SimConfig::default().with_sandbox_pages(pages);
        Simulator::new(cfg, Box::new(defense))
    }

    #[test]
    fn tainted_transmitter_is_blocked() {
        let src = gadgets::spectre_v1(payload::DOUBLE_LOAD);
        let flat = parse_program(&src).unwrap().flatten();
        let mut sim = sim_with(Stt::published(), 1);
        let mut victim = gadgets::victim_input(1);
        victim.regs[1] = 64; // first (access) load reads word 8
        victim.set_word(8, 0xA80); // tainted secret -> would leak line 0x4A80
        let squashes = gadgets::train_then_run(&mut sim, &flat, &victim, false);
        assert!(squashes > 0);
        let l1d = sim.snapshot().l1d;
        assert!(
            !l1d.contains(&0x4A80),
            "STT must block the tainted transmitter: {l1d:x?}"
        );
        assert!(
            l1d.contains(&0x4040),
            "the untainted access load itself may fill: {l1d:x?}"
        );
        assert!(sim
            .log()
            .any(|e| matches!(e, DebugEvent::TaintDelay { .. })));
    }

    #[test]
    fn kv3_tainted_store_fills_tlb() {
        // The wrong path loads a secret and encodes it in a *store* address;
        // the store is blocked from the cache but (bug) translates, leaving
        // a secret-dependent TLB entry — paper Fig. 9.
        let src = gadgets::spectre_v1(payload::LOAD_THEN_STORE);
        let flat = parse_program(&src).unwrap().flatten();
        let run = |bug: bool, secret: u64| {
            let defense = if bug {
                Stt::published()
            } else {
                Stt::patched()
            };
            let mut sim = sim_with(defense, 128);
            let mut victim = gadgets::victim_input(128);
            // 96 = 0b1100000: even parity after the AND, so CMOVP moves.
            victim.regs[2] = 96; // access load reads word 12
            victim.set_word(12, secret); // page-sized secret
            let squashes = gadgets::train_then_run(&mut sim, &flat, &victim, false);
            assert!(squashes > 0);
            sim.snapshot().dtlb
        };
        // Secrets in different pages: the TLB footprint differs iff buggy.
        let a = run(true, 0x9000);
        let b = run(true, 0xD000);
        assert_ne!(a, b, "KV3: secret-dependent TLB entries: {a:?} vs {b:?}");

        let a = run(false, 0x9000);
        let b = run(false, 0xD000);
        assert_eq!(a, b, "patched STT must not leak through the TLB");
    }

    #[test]
    fn architectural_taint_clears_at_visibility() {
        // When the gadget's branch is *architecturally taken*, the payload
        // runs for real: the transmitter untaints once older speculation
        // resolves, executes, and produces the right value — no deadlock.
        let src = gadgets::spectre_v1(payload::DOUBLE_LOAD);
        let flat = parse_program(&src).unwrap().flatten();
        let mut input = gadgets::train_input(1); // branch taken
        input.regs[1] = 64;
        input.set_word(8, 0x300);
        input.set_word(0x300 / 8, 0x77);

        let mut sim = sim_with(Stt::published(), 1);
        sim.load_test(&flat, &input);
        let res = sim.run();
        assert!(res.exit_cycle.is_some(), "no deadlock from taint delays");
        assert_eq!(sim.arch_regs()[4], 0x77, "RSI got the transmitted value");
    }

    #[test]
    fn untainted_spec_loads_may_fill() {
        // STT's contract allows leaks of architectural (untainted) data:
        // a wrong-path load whose address comes from an initial register
        // fills the cache even under STT.
        let src = gadgets::spectre_v1(payload::SINGLE_LOAD);
        let flat = parse_program(&src).unwrap().flatten();
        let mut sim = sim_with(Stt::published(), 1);
        let mut victim = gadgets::victim_input(1);
        victim.regs[1] = 0x740;
        let squashes = gadgets::train_then_run(&mut sim, &flat, &victim, false);
        assert!(squashes > 0);
        assert!(
            sim.snapshot().l1d.contains(&0x4740),
            "register-addressed spec load is untainted and fills"
        );
    }
}
