//! The secure-speculation countermeasures under test.
//!
//! Rust reimplementations of the four defenses the paper's campaigns cover
//! (§4.1), **including the exact buggy behaviours AMuLeT discovered**, each
//! as a toggle with a patched variant:
//!
//! | Defense | Mechanism | Reproduced findings |
//! |---|---|---|
//! | [`InvisiSpec`] | invisible speculative loads + expose at safe point | UV1 (speculative L1D eviction bug), UV2 (same-core MSHR interference), KV1 (unprotected L1I) |
//! | [`CleanupSpec`] | undo speculative cache changes on squash | UV3 (spec stores not cleaned), UV4 (split requests not cleaned), UV5 (too much cleaning), KV2 (unXpec timing) |
//! | [`Stt`] | taint speculative data, block tainted transmitters | KV3 (tainted stores fill the D-TLB) |
//! | [`SpecLfb`] | park speculative misses in the line-fill buffer | UV6 (first speculative load unprotected) |
//! | [`GhostMinion`] | strictness-ordered invisible loads | the UV2 fix the paper points to |
//!
//! [`DefenseKind`] enumerates ready-made configurations (buggy as published
//! vs. patched) plus the harness hints the paper's methodology prescribes
//! per defense (§3.5): sandbox size and cache-initialisation strategy.

pub mod cleanupspec;
pub mod delayonmiss;
pub mod gadgets;
pub mod ghostminion;
pub mod invisispec;
pub mod speclfb;
pub mod stt;

pub use cleanupspec::CleanupSpec;
pub use delayonmiss::DelayOnMiss;
pub use ghostminion::GhostMinion;
pub use invisispec::InvisiSpec;
pub use speclfb::SpecLfb;
pub use stt::Stt;

use amulet_sim::{Defense, InsecureBaseline};

/// Ready-made defense configurations for campaigns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DefenseKind {
    /// Unprotected out-of-order CPU.
    Baseline,
    /// InvisiSpec as published (with the UV1 eviction bug).
    InvisiSpec,
    /// InvisiSpec with the UV1 patch (paper Listing 2).
    InvisiSpecPatched,
    /// CleanupSpec as published (UV3 + UV4 bugs present).
    CleanupSpec,
    /// CleanupSpec with the UV3 store-cleanup patch (Table 8 "Patched").
    CleanupSpecPatched,
    /// STT as published (KV3: tainted stores access the TLB).
    Stt,
    /// STT with the DOLMA-style fix (tainted stores delayed).
    SttPatched,
    /// SpecLFB as published (UV6: first speculative load unprotected).
    SpecLfb,
    /// SpecLFB without the `isReallyUnsafe` optimisation.
    SpecLfbPatched,
    /// GhostMinion-style strictness-ordered invisible speculation.
    GhostMinion,
    /// Delay-on-Miss (Sakalis et al.): speculative misses wait for safety.
    DelayOnMiss,
    /// Fully conservative variant: every speculative load waits.
    DelayAll,
}

/// Per-defense harness configuration from the paper (§3.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HarnessHints {
    /// Sandbox pages (1 for TLB-unprotected defenses, 128 for STT).
    pub sandbox_pages: usize,
    /// Initialise the L1D by prefilling with conflicting out-of-sandbox
    /// addresses (InvisiSpec/STT) instead of flushing clean
    /// (CleanupSpec/SpecLFB).
    pub prefill_l1d: bool,
}

impl DefenseKind {
    /// All kinds, campaign order.
    pub const ALL: [DefenseKind; 12] = [
        DefenseKind::Baseline,
        DefenseKind::InvisiSpec,
        DefenseKind::InvisiSpecPatched,
        DefenseKind::CleanupSpec,
        DefenseKind::CleanupSpecPatched,
        DefenseKind::Stt,
        DefenseKind::SttPatched,
        DefenseKind::SpecLfb,
        DefenseKind::SpecLfbPatched,
        DefenseKind::GhostMinion,
        DefenseKind::DelayOnMiss,
        DefenseKind::DelayAll,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            DefenseKind::Baseline => "Baseline",
            DefenseKind::InvisiSpec => "InvisiSpec",
            DefenseKind::InvisiSpecPatched => "InvisiSpec-Patched",
            DefenseKind::CleanupSpec => "CleanupSpec",
            DefenseKind::CleanupSpecPatched => "CleanupSpec-Patched",
            DefenseKind::Stt => "STT",
            DefenseKind::SttPatched => "STT-Patched",
            DefenseKind::SpecLfb => "SpecLFB",
            DefenseKind::SpecLfbPatched => "SpecLFB-Patched",
            DefenseKind::GhostMinion => "GhostMinion",
            DefenseKind::DelayOnMiss => "DelayOnMiss",
            DefenseKind::DelayAll => "DelayAll",
        }
    }

    /// Builds the defense object.
    pub fn build(self) -> Box<dyn Defense> {
        match self {
            DefenseKind::Baseline => Box::new(InsecureBaseline),
            DefenseKind::InvisiSpec => Box::new(InvisiSpec::published()),
            DefenseKind::InvisiSpecPatched => Box::new(InvisiSpec::patched()),
            DefenseKind::CleanupSpec => Box::new(CleanupSpec::published()),
            DefenseKind::CleanupSpecPatched => Box::new(CleanupSpec::patched()),
            DefenseKind::Stt => Box::new(Stt::published()),
            DefenseKind::SttPatched => Box::new(Stt::patched()),
            DefenseKind::SpecLfb => Box::new(SpecLfb::published()),
            DefenseKind::SpecLfbPatched => Box::new(SpecLfb::patched()),
            DefenseKind::GhostMinion => Box::new(GhostMinion::new()),
            DefenseKind::DelayOnMiss => Box::new(DelayOnMiss::new()),
            DefenseKind::DelayAll => Box::new(DelayOnMiss::delay_everything()),
        }
    }

    /// Paper-prescribed harness configuration (§3.5): 128-page sandbox for
    /// STT (to test TLB leaks), 1 page otherwise; conflict-prefill for
    /// InvisiSpec/STT, clean flush for CleanupSpec/SpecLFB.
    pub fn harness_hints(self) -> HarnessHints {
        match self {
            DefenseKind::Stt | DefenseKind::SttPatched => HarnessHints {
                sandbox_pages: 128,
                prefill_l1d: true,
            },
            DefenseKind::InvisiSpec
            | DefenseKind::InvisiSpecPatched
            | DefenseKind::GhostMinion
            | DefenseKind::Baseline => HarnessHints {
                sandbox_pages: 1,
                prefill_l1d: true,
            },
            DefenseKind::CleanupSpec
            | DefenseKind::CleanupSpecPatched
            | DefenseKind::SpecLfb
            | DefenseKind::SpecLfbPatched
            | DefenseKind::DelayOnMiss
            | DefenseKind::DelayAll => HarnessHints {
                sandbox_pages: 1,
                prefill_l1d: false,
            },
        }
    }
}

impl std::fmt::Display for DefenseKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_build_with_matching_names() {
        for kind in DefenseKind::ALL {
            let d = kind.build();
            assert_eq!(d.name(), kind.name());
        }
    }

    #[test]
    fn harness_hints_match_paper() {
        assert_eq!(DefenseKind::Stt.harness_hints().sandbox_pages, 128);
        assert_eq!(DefenseKind::InvisiSpec.harness_hints().sandbox_pages, 1);
        assert!(DefenseKind::InvisiSpec.harness_hints().prefill_l1d);
        assert!(!DefenseKind::CleanupSpec.harness_hints().prefill_l1d);
        assert!(!DefenseKind::SpecLfb.harness_hints().prefill_l1d);
    }

    #[test]
    fn taint_only_for_stt() {
        for kind in DefenseKind::ALL {
            let needs = kind.build().needs_taint();
            let is_stt = matches!(kind, DefenseKind::Stt | DefenseKind::SttPatched);
            assert_eq!(needs, is_stt, "{kind}");
        }
    }
}
