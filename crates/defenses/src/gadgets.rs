//! Reusable Spectre gadget builders for tests, examples, and benches.
//!
//! The shared shape is a **long-window Spectre-v1 victim**: the branch
//! condition hides behind a two-level dependent cache-miss chain
//! (≈2× memory latency), so mis-speculated payloads have ample time to
//! issue, complete, and change µarch state before the squash — mirroring
//! the windows that make real Spectre gadgets exploitable.

use amulet_isa::TestInput;

/// Builds a long-window Spectre-v1 victim around `payload` (the
/// mis-speculated block). The prelude only uses `R10`/`R11`, so payloads
/// may clobber `RAX`–`RDI` and `R9`, `R12`, `R13` freely.
///
/// Structure:
///
/// ```text
///   R10 <- [R14+256]            ; miss
///   R11 <- [R14+R10+512]        ; dependent miss (the slow condition)
///   if R11 != 0 goto .body      ; trained taken; victim falls through
///   goto .exit
/// .body:                        ; mis-speculated on victim inputs
///   <payload>
/// .exit:
///   EXIT
/// ```
pub fn spectre_v1(payload: &str) -> String {
    format!(
        "MOV R10, qword ptr [R14 + 256]
         AND R10, 0b111111
         MOV R11, qword ptr [R14 + R10 + 512]
         CMP R11, 0
         JNZ .body
         JMP .exit
         .body:
         {payload}
         JMP .exit
         .exit:
         EXIT"
    )
}

/// A training input: the branch resolves *taken* ([`spectre_v1`]'s `.body`
/// runs architecturally with benign registers).
pub fn train_input(pages: usize) -> TestInput {
    let mut t = TestInput::zeroed(pages);
    t.set_word(32, 1); // [256] = 1  -> RAX = 1
    t.set_word(64, 0xFF00); // byte 513 = 0xFF -> RCX != 0 -> taken
    t
}

/// A victim input: the branch resolves *not taken* (zeroed condition chain),
/// so a taken-trained predictor sends fetch down `.body` speculatively.
pub fn victim_input(pages: usize) -> TestInput {
    TestInput::zeroed(pages)
}

/// Standard payloads, named after what they exercise.
pub mod payload {
    /// A single masked load whose address is the (register) secret `RBX` —
    /// the paper's Fig. 8(b) shape (UV6) and the basic Spectre-v1
    /// transmitter.
    pub const SINGLE_LOAD: &str = "AND RBX, 0b111111111111
         MOV RDX, qword ptr [R14 + RBX]";

    /// Access load + dependent transmitter load: the secret is
    /// *speculatively loaded* from memory (`[R14+RBX]`), then encoded in a
    /// second load's address — what STT must block.
    pub const DOUBLE_LOAD: &str = "AND RBX, 0b111111111111
         MOV RDX, qword ptr [R14 + RBX]
         AND RDX, 0b111111111111
         MOV RSI, qword ptr [R14 + RDX]";

    /// A store transmitter: the secret register addresses a speculative
    /// store (CleanupSpec UV3 shape).
    pub const STORE: &str = "AND RBX, 0b111111111111
         MOV qword ptr [R14 + RBX], RDI";

    /// Speculatively loaded secret encoded in a *store* address — the STT
    /// KV3 shape (paper Fig. 9).
    pub const LOAD_THEN_STORE: &str = "AND RCX, 0b1111111111111111111
         CMOVP AX, word ptr [R14 + RCX]
         AND RAX, 0b1111111111111111111
         MOV dword ptr [R14 + RAX], EBX";
}

/// Builds a store→load aliasing (Spectre-STL) victim: a store whose address
/// sits behind `distance` dependent ALU ops (the attacker-controlled
/// disambiguation distance), statically aliased by a displacement-only load
/// whose address is ready immediately. Under a non-zero
/// `SimConfig::stl_window` the load speculatively bypasses the unresolved
/// store, reads the **stale** pre-store value at `STL_OFFSET`, and encodes
/// it in a dependent transmit load before the mis-forwarding squash.
///
/// The prelude only uses `R10`/`R11` plus `RAX`/`RBX`, mirroring
/// [`spectre_v1`]'s register discipline. No branch training is needed: an
/// untrained memory-dependence predictor predicts "no conflict".
///
/// ```text
///   R10 <- STL_OFFSET            ; store offset, behind a dependency chain
///   R10 <- R10 + 0    (× distance)
///   R10 <- R10 & 0xFFF
///   [R14+R10] <- 0               ; store: address late, data benign
///   RAX <- [R14+STL_OFFSET]      ; aliasing load: address ready at once
///   RAX <- RAX & 0xFFF
///   RBX <- [R14+RAX]             ; transmit: encodes the stale value
///   EXIT
/// ```
pub fn spectre_stl(distance: usize) -> String {
    let mut chain = String::new();
    for _ in 0..distance {
        chain.push_str("ADD R10, 0\n         ");
    }
    format!(
        "MOV R10, {STL_OFFSET}
         {chain}AND R10, 0b111111111111
         MOV qword ptr [R14 + R10], 0
         MOV RAX, qword ptr [R14 + {STL_OFFSET}]
         AND RAX, 0b111111111111
         MOV RBX, qword ptr [R14 + RAX]
         EXIT"
    )
}

/// Sandbox offset of [`spectre_stl`]'s aliasing store→load pair.
pub const STL_OFFSET: u64 = 1344;

/// An input for [`spectre_stl`] whose *stale* (pre-store) word at
/// [`STL_OFFSET`] is `stale` — architecturally dead (the store overwrites it
/// before the sequential load), but transmitted under store-bypass
/// misspeculation.
pub fn stl_input(pages: usize, stale: u64) -> TestInput {
    let mut t = TestInput::zeroed(pages);
    t.set_word(STL_OFFSET as usize / 8, stale);
    t
}

/// Runs the standard train-then-victim protocol on a simulator: trains the
/// gadget's branch until the global history saturates, flushes caches, then
/// runs `victim`. Returns the number of squashes in the victim run.
pub fn train_then_run(
    sim: &mut amulet_sim::Simulator,
    flat: &amulet_isa::FlatProgram,
    victim: &TestInput,
    prefill: bool,
) -> u64 {
    let pages = victim.pages().max(1);
    for _ in 0..12 {
        sim.load_test(flat, &train_input(pages));
        sim.run();
    }
    sim.flush_caches();
    if prefill {
        sim.prefill_l1d_conflicting();
    }
    sim.load_test(flat, victim);
    let res = sim.run();
    res.squashes as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use amulet_isa::parse_program;
    use amulet_sim::{InsecureBaseline, SimConfig, Simulator};

    #[test]
    fn victim_run_mispredicts_with_a_long_window() {
        let src = spectre_v1(payload::SINGLE_LOAD);
        let flat = parse_program(&src).unwrap().flatten();
        let mut sim = Simulator::new(SimConfig::default(), Box::new(InsecureBaseline));
        let mut victim = victim_input(1);
        victim.regs[1] = 0x740;
        let squashes = train_then_run(&mut sim, &flat, &victim, false);
        assert!(squashes > 0, "victim must mispredict");
        // On the insecure baseline the wrong-path line must land: the
        // window is long enough for the fill to apply pre-squash.
        assert!(sim.snapshot().l1d.contains(&0x4740));
    }

    #[test]
    fn stl_gadget_leaks_the_stale_value_under_a_window() {
        let src = spectre_stl(3);
        let flat = parse_program(&src).unwrap().flatten();
        let stale = 0x800;
        let input = stl_input(1, stale);

        // With the disambiguation window on, the aliasing load bypasses the
        // unresolved store: a memory-order squash fires, and the transmit
        // line derived from the *stale* value lands in the L1D pre-squash.
        let cfg = SimConfig::default().with_stl_window(180);
        let mut sim = Simulator::new(cfg, Box::new(InsecureBaseline));
        sim.load_test(&flat, &input);
        let res = sim.run();
        assert!(res.squashes > 0, "mis-forwarding must squash");
        assert!(
            sim.snapshot().l1d.contains(&(0x4000 + stale)),
            "stale-derived transmit line must land pre-squash"
        );

        // With the window off (the default), the store disambiguates as soon
        // as its dependency chain resolves — the bypassing load may still be
        // squashed (that short-window misspeculation predates the STL
        // window), but the squash arrives long before the stale load
        // returns, so the stale-derived transmit line never lands. Only the
        // architectural transmit (stored data 0 -> sandbox base) is seen.
        let mut sim = Simulator::new(SimConfig::default(), Box::new(InsecureBaseline));
        sim.load_test(&flat, &input);
        sim.run();
        assert!(!sim.snapshot().l1d.contains(&(0x4000 + stale)));
        assert!(sim.snapshot().l1d.contains(&0x4000));
    }

    #[test]
    fn training_resolves_taken_victim_not_taken() {
        let src = spectre_v1("AND RBX, 0b1");
        let flat = parse_program(&src).unwrap().flatten();
        let mut sim = Simulator::new(SimConfig::default(), Box::new(InsecureBaseline));
        sim.load_test(&flat, &train_input(1));
        sim.run();
        let taken: Vec<bool> = sim
            .snapshot()
            .branch_order
            .iter()
            .map(|&(_, t)| t)
            .collect();
        assert!(!taken.is_empty());
    }
}
