//! CleanupSpec (Saileshwar & Qureshi, MICRO 2019).
//!
//! Speculative loads change cache state freely; on a squash, an *undo* pass
//! rolls the changes back (invalidate installed lines, restore evicted
//! victims), paying a cleanup latency on the squash path. AMuLeT's findings,
//! all reproduced here as toggles:
//!
//! - **UV3** (`store_cleanup_bug`): the gem5 `writeCallback()` never records
//!   cleanup metadata for speculative stores' execute-time RFO fills, so
//!   squashed stores leave their lines behind (paper Listing 3).
//! - **UV4** (`split_cleanup_bug`): requests crossing a cache-line boundary
//!   spawn split requests whose fills are never recorded for cleanup (paper
//!   Listing 4: `// TODO: Cleanup for SplitReq`).
//! - **UV5** (inherent): cleanup invalidates a line even when an older
//!   *non-speculative* load also touched it, erasing the architectural
//!   footprint ("too much cleaning"). The `no_clean_mitigation` flag
//!   implements the commit-time `noClean` idea the paper leaves to future
//!   work, for ablation benches.
//! - **KV2** (inherent): cleanup costs cycles on the squash critical path
//!   (`cleanup_latency`), so the amount of cleanup leaks through execution
//!   time — observable through post-exit instruction fetch-ahead in the L1I
//!   (the unXpec channel).

use amulet_sim::{Defense, FillMode, LoadCtx, LoadPlan, SquashPlan, StoreCtx, StorePlan};

/// The CleanupSpec defense policy.
#[derive(Debug, Clone, Copy)]
pub struct CleanupSpec {
    /// UV3: speculative stores' RFO fills carry no cleanup metadata.
    pub store_cleanup_bug: bool,
    /// UV4: split-request fills carry no cleanup metadata.
    pub split_cleanup_bug: bool,
    /// Optional UV5 mitigation (off in the published design).
    pub no_clean_mitigation: bool,
    /// Cycles per cleanup operation on the squash path (KV2 channel).
    pub cleanup_latency: u64,
}

impl CleanupSpec {
    /// The published implementation: both bugs present, no mitigation.
    pub fn published() -> Self {
        CleanupSpec {
            store_cleanup_bug: true,
            split_cleanup_bug: true,
            no_clean_mitigation: false,
            cleanup_latency: 24,
        }
    }

    /// With the UV3 store-cleanup patch (the paper's "Patched" column in
    /// Table 8); UV4 and UV5 remain.
    pub fn patched() -> Self {
        CleanupSpec {
            store_cleanup_bug: false,
            ..Self::published()
        }
    }
}

impl Defense for CleanupSpec {
    fn name(&self) -> &'static str {
        if self.store_cleanup_bug {
            "CleanupSpec"
        } else {
            "CleanupSpec-Patched"
        }
    }

    fn plan_load(&mut self, ctx: &LoadCtx) -> LoadPlan {
        if ctx.safe {
            return LoadPlan::baseline();
        }
        LoadPlan {
            delay: false,
            fill: FillMode::FillUndo {
                record: !(ctx.split && self.split_cleanup_bug),
            },
            tlb: true,
            expose_at_safe: false,
            flag_unsafe_fill: false,
        }
    }

    fn plan_store(&mut self, ctx: &StoreCtx) -> StorePlan {
        // CleanupSpec's gem5 implementation lets stores fetch their line at
        // execute time (the behaviour UV3's missing metadata exposes).
        let rfo = if ctx.safe {
            FillMode::Fill
        } else {
            FillMode::FillUndo {
                record: !(self.store_cleanup_bug || (ctx.split && self.split_cleanup_bug)),
            }
        };
        StorePlan {
            delay: false,
            tlb: true,
            rfo: Some(rfo),
        }
    }

    fn squash_plan(&self) -> SquashPlan {
        SquashPlan {
            cleanup: true,
            no_clean: self.no_clean_mitigation,
            cleanup_latency_per_op: self.cleanup_latency,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gadgets::{self, payload};
    use amulet_isa::{parse_program, TestInput};
    use amulet_sim::{DebugEvent, SimConfig, Simulator};

    fn sim_with(defense: CleanupSpec) -> Simulator {
        Simulator::new(SimConfig::default(), Box::new(defense))
    }

    fn run_gadget(defense: CleanupSpec, payload: &str, victim: &TestInput) -> Simulator {
        let src = gadgets::spectre_v1(payload);
        let flat = parse_program(&src).unwrap().flatten();
        let mut sim = sim_with(defense);
        let squashes = gadgets::train_then_run(&mut sim, &flat, victim, false);
        assert!(squashes > 0, "victim must mispredict");
        sim
    }

    #[test]
    fn speculative_load_fills_are_cleaned() {
        let mut victim = gadgets::victim_input(1);
        victim.regs[1] = 0x740;
        let sim = run_gadget(CleanupSpec::published(), payload::SINGLE_LOAD, &victim);
        let l1d = sim.snapshot().l1d;
        assert!(
            !l1d.contains(&0x4740),
            "squashed load's line must be undone: {l1d:x?}"
        );
        assert!(sim.log().any(|e| matches!(e, DebugEvent::Undo { .. })));
    }

    #[test]
    fn uv3_spec_store_not_cleaned() {
        let mut victim = gadgets::victim_input(1);
        victim.regs[1] = 0x740;
        victim.regs[5] = 0x99; // RDI: stored value
        let sim = run_gadget(CleanupSpec::published(), payload::STORE, &victim);
        let l1d = sim.snapshot().l1d;
        assert!(
            l1d.contains(&0x4740),
            "UV3: the squashed store's RFO line persists: {l1d:x?}"
        );
        assert!(sim
            .log()
            .any(|e| matches!(e, DebugEvent::CleanupMissing { .. })));
    }

    #[test]
    fn uv3_patched_cleans_spec_stores() {
        let mut victim = gadgets::victim_input(1);
        victim.regs[1] = 0x740;
        victim.regs[5] = 0x99;
        let sim = run_gadget(CleanupSpec::patched(), payload::STORE, &victim);
        let l1d = sim.snapshot().l1d;
        assert!(
            !l1d.contains(&0x4740),
            "patched: the squashed store's RFO is undone: {l1d:x?}"
        );
    }

    #[test]
    fn uv4_split_request_not_cleaned() {
        // The wrong-path load straddles a line boundary (offset 0x73C + 8
        // bytes crosses 0x740); neither line is cleaned even when patched.
        let mut victim = gadgets::victim_input(1);
        victim.regs[1] = 0x73C;
        let sim = run_gadget(CleanupSpec::patched(), payload::SINGLE_LOAD, &victim);
        let l1d = sim.snapshot().l1d;
        assert!(
            l1d.contains(&0x4700) && l1d.contains(&0x4740),
            "UV4: split-request lines persist after squash: {l1d:x?}"
        );
        assert!(sim.log().any(|e| matches!(e, DebugEvent::SplitReq { .. })));
    }

    /// UV5 program: a *non-speculative* load (NSL, older than the branch
    /// but address-delayed behind an independent miss) races with a younger
    /// wrong-path load (SL). With a warm L2, SL fills the shared line first;
    /// NSL then hits it. Cleanup of the squashed SL erases the committed
    /// NSL's footprint — the paper's Table 9 reordering.
    const UV5_SRC: &str = "
        MOV RAX, qword ptr [R14 + 256]
        AND RAX, 0b111111
        MOV RCX, qword ptr [R14 + RAX + 512]
        MOV R9, qword ptr [R14 + 320]
        AND R9, 0b1
        MOV RSI, qword ptr [R14 + R9 + 192]
        CMP RCX, 0
        JNZ .body
        JMP .exit
        .body:
        AND RBX, 0b111111111111
        MOV RDX, qword ptr [R14 + RBX]
        JMP .exit
        .exit:
        EXIT";

    fn run_uv5(defense: CleanupSpec, sl_offset: u64) -> Simulator {
        let flat = parse_program(UV5_SRC).unwrap().flatten();
        let mut sim = sim_with(defense);
        for _ in 0..12 {
            sim.load_test(&flat, &gadgets::train_input(1));
            sim.run();
        }
        sim.flush_caches();
        // Warm the contested line in L2 so the wrong-path SL fills the L1
        // quickly — before the slow NSL's address resolves.
        sim.mem.l2.fill(0x40C0, false, true);
        let mut victim = gadgets::victim_input(1);
        victim.regs[1] = sl_offset;
        sim.load_test(&flat, &victim);
        let res = sim.run();
        assert!(res.squashes > 0, "victim must mispredict");
        sim
    }

    #[test]
    fn uv5_too_much_cleaning_erases_nonspec_footprint() {
        // Input A: SL targets the NSL's line (offset 192 -> line 0x40C0).
        let sim = run_uv5(CleanupSpec::published(), 192);
        let l1d = sim.snapshot().l1d;
        assert!(
            !l1d.contains(&0x40C0),
            "UV5: cleanup erased the committed NSL's line: {l1d:x?}"
        );
        assert!(sim.log().any(|e| matches!(e, DebugEvent::Undo { .. })));

        // Input B: SL targets a different line; the NSL's line stays.
        let sim = run_uv5(CleanupSpec::published(), 0x300);
        assert!(sim.snapshot().l1d.contains(&0x40C0));
    }

    #[test]
    fn uv5_no_clean_mitigation_spares_touched_lines() {
        let mut defense = CleanupSpec::published();
        defense.no_clean_mitigation = true;
        let sim = run_uv5(defense, 192);
        assert!(
            sim.snapshot().l1d.contains(&0x40C0),
            "noClean spares the line the non-speculative load touched: {:x?}",
            sim.snapshot().l1d
        );
    }

    #[test]
    fn kv2_cleanup_latency_extends_execution() {
        // Same program, one input needing no cleanup (wrong-path L1 hit)
        // and one needing cleanup (miss): execution time differs, and with
        // it the post-exit L1I fetch-ahead footprint (the unXpec channel).
        let run = |addr: u64| {
            let src = gadgets::spectre_v1(payload::SINGLE_LOAD);
            let flat = parse_program(&src).unwrap().flatten();
            let mut sim = sim_with(CleanupSpec::published());
            for _ in 0..12 {
                sim.load_test(&flat, &gadgets::train_input(1));
                sim.run();
            }
            sim.flush_caches();
            // Warm line 0x4000 so a wrong-path access to it is an L1 hit.
            sim.mem.l1d.fill(0x4000, false, true);
            let mut victim = gadgets::victim_input(1);
            victim.regs[1] = addr;
            sim.load_test(&flat, &victim);
            let res = sim.run();
            assert!(res.squashes > 0);
            (res.exit_cycle.unwrap(), sim.snapshot().l1i.len())
        };
        let (cycles_hit, l1i_hit) = run(0x8); // wrong path hits warmed line
        let (cycles_miss, l1i_miss) = run(0x740); // wrong path misses: cleanup
        assert!(
            cycles_miss > cycles_hit,
            "cleanup is on the critical path: {cycles_miss} vs {cycles_hit}"
        );
        assert!(
            l1i_miss >= l1i_hit,
            "longer execution fetches at least as many I-lines"
        );
    }
}
