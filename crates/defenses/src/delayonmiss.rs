//! Delay-on-Miss (Sakalis et al., ISCA 2019) — the paper cites it (reference \[30\]) as
//! the invisible-speculation family SpecLFB builds on.
//!
//! Speculative loads that *hit* the L1 proceed (hits are assumed not to
//! change observable state — replacement updates are deferred); speculative
//! loads that *miss* are delayed until the load reaches the visibility
//! point. Simpler than SpecLFB (no line-fill-buffer parking, no unsafe-flag
//! bookkeeping — and therefore no UV6-style bug surface), at a higher
//! performance cost: the miss latency is serialised behind the speculation
//! window.
//!
//! Included as an extension defense for the security-vs-performance ablation
//! bench (`bench ablation_perf`).

use amulet_sim::{Defense, FillMode, LoadCtx, LoadPlan, StoreCtx, StorePlan};

/// The Delay-on-Miss defense policy.
///
/// The simulator probes the L1 as part of the request; to model
/// delay-on-miss without a dedicated pre-probe hook, speculative loads use
/// [`FillMode::Park`]-style gating *plus* an issue delay: we approximate the
/// design by delaying every speculative load until it is safe unless the
/// line is already resident. The probe is communicated through `LoadCtx` by
/// the pipeline's retry loop: a delayed load is re-asked whenever pipeline
/// state changes and proceeds the cycle it becomes safe.
#[derive(Debug, Clone, Copy, Default)]
pub struct DelayOnMiss {
    /// Also delay speculative L1 *hits* (the fully conservative "delay
    /// everything" variant — the eager-delay baseline of the paper's
    /// motivation).
    pub delay_hits: bool,
}

impl DelayOnMiss {
    /// Standard Delay-on-Miss: hits proceed invisibly, misses wait.
    pub fn new() -> Self {
        DelayOnMiss { delay_hits: false }
    }

    /// The fully conservative variant: every speculative load waits.
    pub fn delay_everything() -> Self {
        DelayOnMiss { delay_hits: true }
    }
}

impl Defense for DelayOnMiss {
    fn name(&self) -> &'static str {
        if self.delay_hits {
            "DelayAll"
        } else {
            "DelayOnMiss"
        }
    }

    fn plan_load(&mut self, ctx: &LoadCtx) -> LoadPlan {
        if ctx.safe {
            return LoadPlan::baseline();
        }
        if self.delay_hits {
            return LoadPlan::delayed();
        }
        // Hits proceed without touching replacement state; misses park in
        // the (bug-free) fill buffer and install once safe — squashed loads
        // drop their parked lines, so no speculative state ever commits.
        LoadPlan {
            delay: false,
            fill: FillMode::Park,
            tlb: true,
            expose_at_safe: false,
            flag_unsafe_fill: false,
        }
    }

    fn plan_store(&mut self, _ctx: &StoreCtx) -> StorePlan {
        StorePlan::baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gadgets::{self, payload};
    use amulet_isa::parse_program;
    use amulet_sim::{SimConfig, Simulator};

    fn run_victim(defense: DelayOnMiss, secret: u64) -> Vec<u64> {
        let src = gadgets::spectre_v1(payload::SINGLE_LOAD);
        let flat = parse_program(&src).unwrap().flatten();
        let mut sim = Simulator::new(SimConfig::default(), Box::new(defense));
        let squashes = {
            let mut victim = gadgets::victim_input(1);
            victim.regs[1] = secret;
            gadgets::train_then_run(&mut sim, &flat, &victim, false)
        };
        assert!(squashes > 0, "victim must mispredict");
        sim.snapshot().l1d
    }

    #[test]
    fn blocks_single_load_spectre_v1() {
        for defense in [DelayOnMiss::new(), DelayOnMiss::delay_everything()] {
            // Secrets chosen to avoid the gadget's architectural lines
            // (0x4100/0x4200).
            let a = run_victim(defense, 0x740);
            let b = run_victim(defense, 0x340);
            assert_eq!(a, b, "{}: wrong-path miss leaked", defense.name());
            assert!(!a.contains(&0x4740) && !b.contains(&0x4340));
        }
    }

    #[test]
    fn architectural_results_unaffected() {
        use amulet_emu::{Emulator, NullObserver};
        let src = gadgets::spectre_v1(payload::DOUBLE_LOAD);
        let flat = parse_program(&src).unwrap().flatten();
        let mut input = gadgets::train_input(1);
        input.regs[1] = 64;
        input.set_word(8, 0x300);
        input.set_word(0x300 / 8, 0x55);

        let mut emu = Emulator::new(&flat, 0x4000, &input);
        emu.run(&mut NullObserver, 100_000).unwrap();

        for defense in [DelayOnMiss::new(), DelayOnMiss::delay_everything()] {
            let mut sim = Simulator::new(SimConfig::default(), Box::new(defense));
            sim.load_test(&flat, &input);
            let res = sim.run();
            assert!(res.exit_cycle.is_some(), "{}: deadlock", defense.name());
            assert_eq!(sim.arch_regs(), &emu.machine.regs, "{}", defense.name());
        }
    }

    #[test]
    fn delay_all_is_slower_than_delay_on_miss() {
        // Warm the wrong-path line so DelayOnMiss lets the (hitting) load
        // proceed while DelayAll still serialises it: the conservative
        // variant can never be faster.
        let src = gadgets::spectre_v1(payload::SINGLE_LOAD);
        let flat = parse_program(&src).unwrap().flatten();
        let run = |defense: DelayOnMiss| {
            let mut sim = Simulator::new(SimConfig::default(), Box::new(defense));
            let mut input = gadgets::train_input(1);
            input.regs[1] = 0x8;
            sim.load_test(&flat, &input);
            sim.run().exit_cycle.unwrap()
        };
        assert!(run(DelayOnMiss::delay_everything()) >= run(DelayOnMiss::new()));
    }
}
