//! InvisiSpec (Yan et al., MICRO 2018), Futuristic mode.
//!
//! Speculative loads fetch their data through *invisible* requests that must
//! not change any cache state; when a load reaches the visibility point, an
//! *expose* request installs the line normally. The gem5 implementation bug
//! AMuLeT found (UV1, paper Listing 1) is that a speculative miss in a full
//! set still triggers an L1 replacement — leaking the speculative address
//! through the evicted victim. The paper's Listing 2 patch restricts
//! replacements to non-speculative requests.
//!
//! Even patched, InvisiSpec is vulnerable to same-core speculative
//! interference (UV2): invisible requests occupy MSHRs, delaying exposes of
//! older loads past the end of the test. That emerges from the simulator's
//! memory system under reduced MSHR counts — no code here is involved, which
//! is the point.

use amulet_sim::{Defense, FillMode, LoadCtx, LoadPlan, StoreCtx, StorePlan};

/// The InvisiSpec defense policy.
#[derive(Debug, Clone, Copy)]
pub struct InvisiSpec {
    /// Reproduce the UV1 speculative-eviction bug (paper Listing 1).
    pub eviction_bug: bool,
}

impl InvisiSpec {
    /// The published gem5 implementation (UV1 present).
    pub fn published() -> Self {
        InvisiSpec { eviction_bug: true }
    }

    /// With the paper's Listing 2 patch applied.
    pub fn patched() -> Self {
        InvisiSpec {
            eviction_bug: false,
        }
    }
}

impl Defense for InvisiSpec {
    fn name(&self) -> &'static str {
        if self.eviction_bug {
            "InvisiSpec"
        } else {
            "InvisiSpec-Patched"
        }
    }

    fn plan_load(&mut self, ctx: &LoadCtx) -> LoadPlan {
        if ctx.safe {
            return LoadPlan::baseline();
        }
        LoadPlan {
            delay: false,
            fill: FillMode::NoFill {
                buggy_eviction: self.eviction_bug,
                ghost: false,
            },
            // InvisiSpec does not protect the TLB (hence the 1-page sandbox
            // in the paper's harness).
            tlb: true,
            expose_at_safe: true,
            flag_unsafe_fill: false,
        }
    }

    fn plan_store(&mut self, _ctx: &StoreCtx) -> StorePlan {
        StorePlan::baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gadgets::{self, payload};
    use amulet_isa::{parse_program, TestInput};
    use amulet_sim::{DebugEvent, SimConfig, Simulator};

    fn run_victim(defense: InvisiSpec, prefill: bool) -> (Simulator, Vec<u64>) {
        let src = gadgets::spectre_v1(payload::SINGLE_LOAD);
        let flat = parse_program(&src).unwrap().flatten();
        let mut sim = Simulator::new(SimConfig::default(), Box::new(defense));
        let mut victim = gadgets::victim_input(1);
        victim.regs[1] = 0x740; // wrong-path load -> line 0x4740
        let squashes = gadgets::train_then_run(&mut sim, &flat, &victim, prefill);
        assert!(squashes > 0, "victim run must mispredict");
        let snap = sim.snapshot().l1d;
        (sim, snap)
    }

    #[test]
    fn invisible_loads_do_not_install() {
        let (_, l1d) = run_victim(InvisiSpec::patched(), false);
        assert!(
            !l1d.contains(&0x4740),
            "patched InvisiSpec must not install the wrong-path line: {l1d:x?}"
        );
    }

    #[test]
    fn uv1_eviction_bug_leaks_through_victims() {
        // With a prefilled cache, the buggy speculative miss evicts a victim
        // from the set of the secret-dependent address.
        let (sim, buggy) = run_victim(InvisiSpec::published(), true);
        assert!(
            sim.log()
                .any(|e| matches!(e, DebugEvent::Replace { spec: true, .. })),
            "UV1 signature: speculative replacement"
        );
        assert!(!buggy.contains(&0x4740), "spec line itself stays invisible");

        let (_, patched) = run_victim(InvisiSpec::patched(), true);
        assert_ne!(
            buggy, patched,
            "the eviction bug must change the final cache state"
        );
        // The buggy run lost at least one prefilled line in the secret's set.
        assert!(patched.len() > buggy.len());
    }

    #[test]
    fn committed_loads_expose_and_install() {
        let flat = parse_program("MOV RAX, qword ptr [R14 + 8]\nEXIT")
            .unwrap()
            .flatten();
        let mut sim = Simulator::new(SimConfig::default(), Box::new(InvisiSpec::patched()));
        sim.load_test(&flat, &TestInput::zeroed(1));
        sim.run();
        assert!(
            sim.snapshot().l1d.contains(&0x4000),
            "architectural loads must appear after expose"
        );
    }

    #[test]
    fn squashed_loads_are_never_exposed() {
        let (sim, _) = run_victim(InvisiSpec::patched(), false);
        let exposes_of_squashed = sim
            .log()
            .any(|e| matches!(e, DebugEvent::Expose { addr, .. } if *addr == 0x4740));
        assert!(!exposes_of_squashed, "squashed wrong-path load exposed");
    }

    #[test]
    fn same_ctrace_inputs_give_same_state_when_patched() {
        // Two victims with different wrong-path-only secrets must leave the
        // same µarch state under patched InvisiSpec (default config).
        let run = |secret: u64| {
            let src = gadgets::spectre_v1(payload::SINGLE_LOAD);
            let flat = parse_program(&src).unwrap().flatten();
            let mut sim = Simulator::new(SimConfig::default(), Box::new(InvisiSpec::patched()));
            let mut victim = gadgets::victim_input(1);
            victim.regs[1] = secret;
            gadgets::train_then_run(&mut sim, &flat, &victim, true);
            let s = sim.snapshot();
            (s.l1d, s.dtlb)
        };
        assert_eq!(run(0x740), run(0x100));
    }
}
