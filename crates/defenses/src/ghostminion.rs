//! A GhostMinion-style strictness-ordered defense (Ainsworth, MICRO 2021).
//!
//! The paper points to GhostMinion as the fix for the same-core speculative
//! interference variant it found in InvisiSpec (UV2): *strictness ordering*
//! guarantees that younger (speculative) operations can never influence the
//! timing of older ones. We model that property directly: invisible
//! speculative requests travel on their own virtual channel, bypassing the
//! MSHRs and the cache-controller queue, so they cannot delay exposes or
//! demand requests. Exposes at the visibility point behave like
//! InvisiSpec's.
//!
//! This is an *extension* defense (§4.5 "Fix"), used by the ablation bench
//! to show the UV2 signal disappearing.

use amulet_sim::{Defense, FillMode, LoadCtx, LoadPlan, StoreCtx, StorePlan};

/// The GhostMinion-style defense policy.
#[derive(Debug, Clone, Copy, Default)]
pub struct GhostMinion;

impl GhostMinion {
    /// Creates the defense.
    pub fn new() -> Self {
        GhostMinion
    }
}

impl Defense for GhostMinion {
    fn name(&self) -> &'static str {
        "GhostMinion"
    }

    fn plan_load(&mut self, ctx: &LoadCtx) -> LoadPlan {
        if ctx.safe {
            return LoadPlan::baseline();
        }
        LoadPlan {
            delay: false,
            fill: FillMode::NoFill {
                buggy_eviction: false,
                ghost: true,
            },
            tlb: true,
            expose_at_safe: true,
            flag_unsafe_fill: false,
        }
    }

    fn plan_store(&mut self, _ctx: &StoreCtx) -> StorePlan {
        StorePlan::baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amulet_isa::{parse_program, TestInput};
    use amulet_sim::{DebugEvent, SimConfig, Simulator};

    #[test]
    fn invisible_and_installs_after_safety() {
        let flat = parse_program(
            "MOV RAX, qword ptr [R14 + 8]
             EXIT",
        )
        .unwrap()
        .flatten();
        let mut sim = Simulator::new(SimConfig::default(), Box::new(GhostMinion::new()));
        sim.load_test(&flat, &TestInput::zeroed(1));
        sim.run();
        assert!(sim.snapshot().l1d.contains(&0x4000));
    }

    #[test]
    fn ghost_requests_never_stall_mshrs() {
        // Even with 1 MSHR, speculative ghost loads do not contend.
        let src = "
            MOV RAX, qword ptr [R14 + 256]
            CMP RAX, 0
            JNZ .body
            JMP .exit
            .body:
            AND RBX, 0b111111111111
            MOV RDX, qword ptr [R14 + RBX]
            JMP .exit
            .exit:
            EXIT";
        let flat = parse_program(src).unwrap().flatten();
        let cfg = SimConfig::default().amplified(2, 1);
        let mut sim = Simulator::new(cfg, Box::new(GhostMinion::new()));
        for _ in 0..12 {
            let mut t = TestInput::zeroed(1);
            t.set_word(32, 1);
            sim.load_test(&flat, &t);
            sim.run();
        }
        sim.flush_caches();
        let mut victim = TestInput::zeroed(1);
        victim.regs[1] = 0x740;
        sim.load_test(&flat, &victim);
        let res = sim.run();
        assert!(res.squashes > 0);
        let spec_stalls = sim
            .log()
            .events()
            .iter()
            .filter(|e| matches!(e, DebugEvent::MshrStall { .. }))
            .count();
        assert_eq!(spec_stalls, 0, "ghost channel avoids MSHR contention");
        assert!(!sim.snapshot().l1d.contains(&0x4740), "still invisible");
    }
}
