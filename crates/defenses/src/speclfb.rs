//! SpecLFB (Cheng et al., USENIX Security 2024).
//!
//! Security checks on the line-fill buffer: speculative cache *misses* are
//! parked in the LFB and only installed into the cache once the load is
//! safe; squashed loads' LFB entries are dropped. Speculative hits do not
//! update replacement state.
//!
//! The vulnerability AMuLeT found (UV6, paper Fig. 8): an undocumented
//! optimisation clears the `isReallyUnsafe` flag when a load is the *first*
//! speculative load in the load-store queue, so single-speculative-load
//! Spectre gadgets (`isUnsafe()` returns false) fill the cache directly —
//! making the open-source implementation insecure against plain Spectre-v1
//! with a register secret.

use amulet_sim::{Defense, FillMode, LoadCtx, LoadPlan, StoreCtx, StorePlan};

/// The SpecLFB defense policy.
#[derive(Debug, Clone, Copy)]
pub struct SpecLfb {
    /// UV6: the first speculative load in the LSQ is treated as safe.
    pub first_load_opt_bug: bool,
}

impl SpecLfb {
    /// The published gem5 implementation (UV6 present).
    pub fn published() -> Self {
        SpecLfb {
            first_load_opt_bug: true,
        }
    }

    /// Without the `isReallyUnsafe` optimisation.
    pub fn patched() -> Self {
        SpecLfb {
            first_load_opt_bug: false,
        }
    }
}

impl Defense for SpecLfb {
    fn name(&self) -> &'static str {
        if self.first_load_opt_bug {
            "SpecLFB"
        } else {
            "SpecLFB-Patched"
        }
    }

    fn plan_load(&mut self, ctx: &LoadCtx) -> LoadPlan {
        if ctx.safe {
            return LoadPlan::baseline();
        }
        if self.first_load_opt_bug && ctx.first_unsafe_load {
            // isPrevNoUnsafe() -> clearReallyUnsafe(): the load is treated
            // as safe and fills the cache immediately (UV6).
            return LoadPlan {
                flag_unsafe_fill: true,
                ..LoadPlan::baseline()
            };
        }
        LoadPlan {
            delay: false,
            fill: FillMode::Park,
            tlb: true,
            expose_at_safe: false,
            flag_unsafe_fill: false,
        }
    }

    fn plan_store(&mut self, _ctx: &StoreCtx) -> StorePlan {
        StorePlan::baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gadgets::{self, payload};
    use amulet_isa::parse_program;
    use amulet_sim::{DebugEvent, SimConfig, Simulator};

    fn run_victim(defense: SpecLfb, body: &str, secret_reg: usize, secret: u64) -> Simulator {
        let src = gadgets::spectre_v1(body);
        let flat = parse_program(&src).unwrap().flatten();
        let mut sim = Simulator::new(SimConfig::default(), Box::new(defense));
        let mut victim = gadgets::victim_input(1);
        victim.regs[secret_reg] = secret;
        let squashes = gadgets::train_then_run(&mut sim, &flat, &victim, false);
        assert!(squashes > 0, "victim must mispredict");
        sim
    }

    #[test]
    fn uv6_first_speculative_load_leaks() {
        // Secret in RBX, a single speculative load (paper Fig. 8b): the
        // buggy first-load optimisation lets it fill directly.
        let sim = run_victim(SpecLfb::published(), payload::SINGLE_LOAD, 1, 0x740);
        let l1d = sim.snapshot().l1d;
        assert!(
            l1d.contains(&0x4740),
            "UV6: the first speculative load fills directly: {l1d:x?}"
        );
        assert!(sim
            .log()
            .any(|e| matches!(e, DebugEvent::LfbUnsafeFill { .. })));
    }

    #[test]
    fn patched_single_load_is_parked_and_dropped() {
        let sim = run_victim(SpecLfb::patched(), payload::SINGLE_LOAD, 1, 0x740);
        let l1d = sim.snapshot().l1d;
        assert!(
            !l1d.contains(&0x4740),
            "patched SpecLFB parks and drops the squashed miss: {l1d:x?}"
        );
        assert!(sim.log().any(|e| matches!(e, DebugEvent::LfbPark { .. })));
    }

    #[test]
    fn second_speculative_load_is_protected_even_buggy() {
        // The dependent transmitter is never the first unsafe load in the
        // LSQ, so the optimisation cannot unprotect it.
        let mut sim = {
            let src = gadgets::spectre_v1(payload::DOUBLE_LOAD);
            let flat = parse_program(&src).unwrap().flatten();
            let mut sim = Simulator::new(SimConfig::default(), Box::new(SpecLfb::published()));
            let mut victim = gadgets::victim_input(1);
            victim.regs[1] = 64;
            victim.set_word(8, 0xA80); // secret loaded speculatively
            let squashes = gadgets::train_then_run(&mut sim, &flat, &victim, false);
            assert!(squashes > 0);
            sim
        };
        let l1d = sim.snapshot().l1d;
        assert!(
            !l1d.contains(&0x4A80),
            "the dependent transmitter is parked, not filled: {l1d:x?}"
        );
        let _ = &mut sim;
    }

    #[test]
    fn safe_parked_lines_install() {
        // An architectural load that was briefly speculative (behind a
        // resolving branch) must still end up cached.
        use amulet_isa::TestInput;
        let src = "
            MOV RAX, qword ptr [R14 + 256]
            CMP RAX, 0
            JNZ .t
            .t:
            MOV RDX, qword ptr [R14 + 128]
            MOV RSI, qword ptr [R14 + 512]
            EXIT";
        let flat = parse_program(src).unwrap().flatten();
        let mut sim = Simulator::new(SimConfig::default(), Box::new(SpecLfb::patched()));
        sim.load_test(&flat, &TestInput::zeroed(1));
        let res = sim.run();
        assert!(res.exit_cycle.is_some());
        let l1d = sim.snapshot().l1d;
        assert!(
            l1d.contains(&0x4080) && l1d.contains(&0x4200),
            "architectural loads install once safe: {l1d:x?}"
        );
    }
}
