//! Instruction and operand definitions, plus static effect metadata.

use crate::program::BlockId;
use crate::reg::{Flags, Gpr, Width};
use std::fmt;

/// A memory operand: `width ptr [base + index + disp]`.
///
/// Generated programs always use [`Gpr::SANDBOX_BASE`] (`R14`) as the base
/// and pre-mask the index register, Revizor-style; hand-written programs may
/// use any base.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRef {
    /// Base register (usually `R14`).
    pub base: Gpr,
    /// Optional index register, added to the base.
    pub index: Option<Gpr>,
    /// Constant displacement, added to the base.
    pub disp: i64,
    /// Access width.
    pub width: Width,
}

impl MemRef {
    /// A `width ptr [base + index]` operand.
    pub fn base_index(base: Gpr, index: Gpr, width: Width) -> Self {
        MemRef {
            base,
            index: Some(index),
            disp: 0,
            width,
        }
    }

    /// A `width ptr [base + disp]` operand.
    pub fn base_disp(base: Gpr, disp: i64, width: Width) -> Self {
        MemRef {
            base,
            index: None,
            disp,
            width,
        }
    }

    /// Registers this operand reads to form its address.
    pub fn addr_regs(&self) -> impl Iterator<Item = Gpr> + '_ {
        std::iter::once(self.base).chain(self.index)
    }

    /// Computes the effective address given a register-read function.
    pub fn effective_addr(&self, read: impl Fn(Gpr) -> u64) -> u64 {
        let mut addr = read(self.base);
        if let Some(idx) = self.index {
            addr = addr.wrapping_add(read(idx));
        }
        addr.wrapping_add(self.disp as u64)
    }
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ptr [{}", self.width.ptr_keyword(), self.base)?;
        if let Some(idx) = self.index {
            write!(f, " + {idx}")?;
        }
        if self.disp > 0 {
            write!(f, " + {}", self.disp)?;
        } else if self.disp < 0 {
            write!(f, " - {}", -self.disp)?;
        }
        write!(f, "]")
    }
}

/// An instruction operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A register at a given width (e.g. `BL` = `Reg(Rbx, Width::B)`).
    Reg(Gpr, Width),
    /// An immediate value.
    Imm(i64),
    /// A memory location.
    Mem(MemRef),
}

impl Operand {
    /// The operand's width, if it has an intrinsic one (`Imm` does not).
    pub fn width(&self) -> Option<Width> {
        match self {
            Operand::Reg(_, w) => Some(*w),
            Operand::Mem(m) => Some(m.width),
            Operand::Imm(_) => None,
        }
    }

    /// Returns the memory reference if this operand is a memory operand.
    pub fn mem(&self) -> Option<&MemRef> {
        match self {
            Operand::Mem(m) => Some(m),
            _ => None,
        }
    }

    /// Returns `true` for memory operands.
    pub fn is_mem(&self) -> bool {
        matches!(self, Operand::Mem(_))
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r, w) => f.write_str(r.name(*w)),
            Operand::Imm(v) => {
                // Print bitmask-looking immediates in binary, like the paper.
                let u = *v as u64;
                if *v > 7 && (u & (u + 1)) == 0 {
                    write!(f, "0b{u:b}")
                } else {
                    write!(f, "{v}")
                }
            }
            Operand::Mem(m) => m.fmt(f),
        }
    }
}

/// Two-operand ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    Add,
    Sub,
    Adc,
    Sbb,
    And,
    Or,
    Xor,
    /// Compare: `Sub` that discards the result.
    Cmp,
    /// Bit test: `And` that discards the result.
    Test,
    Shl,
    Shr,
    Sar,
    Imul,
}

impl AluOp {
    /// All ALU operations.
    pub const ALL: [AluOp; 13] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Adc,
        AluOp::Sbb,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Cmp,
        AluOp::Test,
        AluOp::Shl,
        AluOp::Shr,
        AluOp::Sar,
        AluOp::Imul,
    ];

    /// `true` if the operation discards its result (`CMP`, `TEST`).
    pub fn discards_result(self) -> bool {
        matches!(self, AluOp::Cmp | AluOp::Test)
    }

    /// `true` if the operation reads the carry flag (`ADC`, `SBB`).
    pub fn reads_carry(self) -> bool {
        matches!(self, AluOp::Adc | AluOp::Sbb)
    }

    /// `true` if the operation's output flags depend on the input flags:
    /// `ADC`/`SBB` consume CF, and shifts leave FLAGS untouched when the
    /// (masked) count is zero.
    pub fn reads_flags(self) -> bool {
        self.reads_carry() || matches!(self, AluOp::Shl | AluOp::Shr | AluOp::Sar)
    }

    /// Mnemonic in upper case.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "ADD",
            AluOp::Sub => "SUB",
            AluOp::Adc => "ADC",
            AluOp::Sbb => "SBB",
            AluOp::And => "AND",
            AluOp::Or => "OR",
            AluOp::Xor => "XOR",
            AluOp::Cmp => "CMP",
            AluOp::Test => "TEST",
            AluOp::Shl => "SHL",
            AluOp::Shr => "SHR",
            AluOp::Sar => "SAR",
            AluOp::Imul => "IMUL",
        }
    }
}

/// One-operand ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    Not,
    Neg,
    Inc,
    Dec,
}

impl UnOp {
    /// All unary operations.
    pub const ALL: [UnOp; 4] = [UnOp::Not, UnOp::Neg, UnOp::Inc, UnOp::Dec];

    /// Mnemonic in upper case.
    pub fn mnemonic(self) -> &'static str {
        match self {
            UnOp::Not => "NOT",
            UnOp::Neg => "NEG",
            UnOp::Inc => "INC",
            UnOp::Dec => "DEC",
        }
    }
}

/// x86 condition codes (as used by `Jcc`, `CMOVcc`, `SETcc`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Overflow (`O`).
    O,
    /// Not overflow (`NO`).
    No,
    /// Below / carry (`B`).
    B,
    /// Not below (`NB`/`AE`).
    Nb,
    /// Zero / equal (`Z`/`E`).
    Z,
    /// Not zero (`NZ`/`NE`).
    Nz,
    /// Below or equal (`BE`).
    Be,
    /// Not below-or-equal / above (`NBE`/`A`).
    Nbe,
    /// Sign (`S`).
    S,
    /// Not sign (`NS`).
    Ns,
    /// Parity (`P`).
    P,
    /// Not parity (`NP`).
    Np,
    /// Less (`L`).
    L,
    /// Not less (`NL`/`GE`).
    Nl,
    /// Less or equal (`LE`).
    Le,
    /// Not less-or-equal / greater (`NLE`/`G`).
    Nle,
}

impl Cond {
    /// All condition codes.
    pub const ALL: [Cond; 16] = [
        Cond::O,
        Cond::No,
        Cond::B,
        Cond::Nb,
        Cond::Z,
        Cond::Nz,
        Cond::Be,
        Cond::Nbe,
        Cond::S,
        Cond::Ns,
        Cond::P,
        Cond::Np,
        Cond::L,
        Cond::Nl,
        Cond::Le,
        Cond::Nle,
    ];

    /// Evaluates the condition against a flag state.
    pub fn eval(self, f: Flags) -> bool {
        match self {
            Cond::O => f.of(),
            Cond::No => !f.of(),
            Cond::B => f.cf(),
            Cond::Nb => !f.cf(),
            Cond::Z => f.zf(),
            Cond::Nz => !f.zf(),
            Cond::Be => f.cf() || f.zf(),
            Cond::Nbe => !f.cf() && !f.zf(),
            Cond::S => f.sf(),
            Cond::Ns => !f.sf(),
            Cond::P => f.pf(),
            Cond::Np => !f.pf(),
            Cond::L => f.sf() != f.of(),
            Cond::Nl => f.sf() == f.of(),
            Cond::Le => f.zf() || (f.sf() != f.of()),
            Cond::Nle => !f.zf() && (f.sf() == f.of()),
        }
    }

    /// Condition-code suffix (e.g. `"NBE"`).
    pub fn suffix(self) -> &'static str {
        match self {
            Cond::O => "O",
            Cond::No => "NO",
            Cond::B => "B",
            Cond::Nb => "NB",
            Cond::Z => "Z",
            Cond::Nz => "NZ",
            Cond::Be => "BE",
            Cond::Nbe => "NBE",
            Cond::S => "S",
            Cond::Ns => "NS",
            Cond::P => "P",
            Cond::Np => "NP",
            Cond::L => "L",
            Cond::Nl => "NL",
            Cond::Le => "LE",
            Cond::Nle => "NLE",
        }
    }

    /// Parses a condition-code suffix, accepting common aliases
    /// (`E`→`Z`, `NE`→`NZ`, `A`→`NBE`, `AE`→`NB`, `G`→`NLE`, `GE`→`NL`).
    pub fn parse(s: &str) -> Option<Cond> {
        Some(match s.to_ascii_uppercase().as_str() {
            "O" => Cond::O,
            "NO" => Cond::No,
            "B" | "C" | "NAE" => Cond::B,
            "NB" | "NC" | "AE" => Cond::Nb,
            "Z" | "E" => Cond::Z,
            "NZ" | "NE" => Cond::Nz,
            "BE" | "NA" => Cond::Be,
            "NBE" | "A" => Cond::Nbe,
            "S" => Cond::S,
            "NS" => Cond::Ns,
            "P" | "PE" => Cond::P,
            "NP" | "PO" => Cond::Np,
            "L" | "NGE" => Cond::L,
            "NL" | "GE" => Cond::Nl,
            "LE" | "NG" => Cond::Le,
            "NLE" | "G" => Cond::Nle,
            _ => return None,
        })
    }
}

/// The `LOOP` family: decrement `RCX`, branch while non-zero (optionally
/// gated on `ZF`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoopKind {
    /// `LOOP`: branch if `RCX != 0`.
    Loop,
    /// `LOOPE`: branch if `RCX != 0 && ZF`.
    Loope,
    /// `LOOPNE`: branch if `RCX != 0 && !ZF`.
    Loopne,
}

impl LoopKind {
    /// Mnemonic in upper case.
    pub fn mnemonic(self) -> &'static str {
        match self {
            LoopKind::Loop => "LOOP",
            LoopKind::Loope => "LOOPE",
            LoopKind::Loopne => "LOOPNE",
        }
    }
}

/// A µx86 instruction.
///
/// Branch targets are [`BlockId`]s; [`crate::Program::flatten`] resolves them
/// to flat instruction indices for execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// `MOV dst, src` (no flags). Covers loads, stores, reg-reg and imm moves.
    Mov { dst: Operand, src: Operand },
    /// Two-operand ALU op; `lock` marks a `LOCK`-prefixed memory RMW.
    Alu {
        op: AluOp,
        dst: Operand,
        src: Operand,
        lock: bool,
    },
    /// One-operand ALU op.
    Un { op: UnOp, dst: Operand, lock: bool },
    /// `CMOVcc dst, src`: conditional register load/move (always reads `src`).
    Cmov {
        cond: Cond,
        dst: Operand,
        src: Operand,
    },
    /// `SETcc dst`: writes 0/1 byte.
    Set { cond: Cond, dst: Operand },
    /// Conditional branch to a block.
    Jcc { cond: Cond, target: BlockId },
    /// Unconditional jump to a block.
    Jmp { target: BlockId },
    /// `LOOP`/`LOOPE`/`LOOPNE` to a block.
    Loop { kind: LoopKind, target: BlockId },
    /// Speculation barrier (`LFENCE`).
    Fence,
    /// Terminates the test case (the `m5exit` analogue).
    Exit,
}

/// Memory behaviour of an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemEffect {
    /// Reads memory (`MOV r, [m]`, ALU `r, [m]`, `CMOVcc r, [m]`).
    Load(MemRef),
    /// Writes memory (`MOV [m], r/imm`, `SETcc [m]`).
    Store(MemRef),
    /// Read-modify-write (`ALU [m], r/imm`, `NOT/NEG/INC/DEC [m]`).
    Rmw(MemRef),
}

impl MemEffect {
    /// The memory reference regardless of direction.
    pub fn mem_ref(&self) -> &MemRef {
        match self {
            MemEffect::Load(m) | MemEffect::Store(m) | MemEffect::Rmw(m) => m,
        }
    }

    /// `true` if the effect reads memory.
    pub fn reads(&self) -> bool {
        matches!(self, MemEffect::Load(_) | MemEffect::Rmw(_))
    }

    /// `true` if the effect writes memory.
    pub fn writes(&self) -> bool {
        matches!(self, MemEffect::Store(_) | MemEffect::Rmw(_))
    }
}

/// An inline, allocation-free register list. No µx86 instruction reads more
/// than five registers (two memory-operand address registers per side plus a
/// destination), so [`Instr::effects`] — called once per *fetched*
/// instruction in the simulator's dispatch hot loop — never touches the
/// heap. Dereferences to a `[Gpr]` slice.
pub type RegList = amulet_util::ArrayVec<Gpr, 5>;

/// Static data-flow summary of an instruction, used by the simulator's
/// renamer and the emulator's taint engine.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Effects {
    /// Registers read (including address registers of memory operands).
    pub reads: RegList,
    /// Register written, if any, with the write width.
    pub writes: Option<(Gpr, Width)>,
    /// Whether the instruction reads FLAGS.
    pub reads_flags: bool,
    /// Whether the instruction writes FLAGS.
    pub writes_flags: bool,
    /// Memory behaviour, if any.
    pub mem: Option<MemEffect>,
    /// Whether this is a control-flow instruction.
    pub is_branch: bool,
}

impl Instr {
    /// Returns the branch target if this is a control-flow instruction.
    pub fn branch_target(&self) -> Option<BlockId> {
        match self {
            Instr::Jcc { target, .. } | Instr::Jmp { target } | Instr::Loop { target, .. } => {
                Some(*target)
            }
            _ => None,
        }
    }

    /// `true` for conditional control flow (can mispredict a direction).
    pub fn is_cond_branch(&self) -> bool {
        matches!(self, Instr::Jcc { .. } | Instr::Loop { .. })
    }

    /// Computes the static data-flow summary.
    pub fn effects(&self) -> Effects {
        let mut e = Effects::default();
        let read_op = |e: &mut Effects, op: &Operand| match op {
            Operand::Reg(r, _) => e.reads.push(*r),
            Operand::Mem(m) => e.reads.extend(m.addr_regs()),
            Operand::Imm(_) => {}
        };
        match self {
            Instr::Mov { dst, src } => {
                read_op(&mut e, src);
                match dst {
                    Operand::Reg(r, w) => e.writes = Some((*r, *w)),
                    Operand::Mem(m) => {
                        e.reads.extend(m.addr_regs());
                        e.mem = Some(MemEffect::Store(*m));
                    }
                    Operand::Imm(_) => {}
                }
                if let Operand::Mem(m) = src {
                    e.mem = Some(MemEffect::Load(*m));
                }
            }
            Instr::Alu { op, dst, src, .. } => {
                read_op(&mut e, src);
                e.writes_flags = true;
                e.reads_flags = op.reads_flags();
                match dst {
                    Operand::Reg(r, w) => {
                        e.reads.push(*r);
                        if !op.discards_result() {
                            e.writes = Some((*r, *w));
                        }
                    }
                    Operand::Mem(m) => {
                        e.reads.extend(m.addr_regs());
                        e.mem = Some(if op.discards_result() {
                            MemEffect::Load(*m)
                        } else {
                            MemEffect::Rmw(*m)
                        });
                    }
                    Operand::Imm(_) => {}
                }
                if let Operand::Mem(m) = src {
                    e.mem = Some(MemEffect::Load(*m));
                }
            }
            Instr::Un { op, dst, .. } => {
                e.writes_flags = !matches!(op, UnOp::Not);
                // INC/DEC preserve CF, so their output flags depend on the
                // old flag state.
                e.reads_flags = matches!(op, UnOp::Inc | UnOp::Dec);
                match dst {
                    Operand::Reg(r, w) => {
                        e.reads.push(*r);
                        e.writes = Some((*r, *w));
                    }
                    Operand::Mem(m) => {
                        e.reads.extend(m.addr_regs());
                        e.mem = Some(MemEffect::Rmw(*m));
                    }
                    Operand::Imm(_) => {}
                }
            }
            Instr::Cmov { dst, src, .. } => {
                e.reads_flags = true;
                read_op(&mut e, src);
                if let Operand::Mem(m) = src {
                    e.mem = Some(MemEffect::Load(*m));
                }
                if let Operand::Reg(r, w) = dst {
                    // CMOV reads the destination too (the not-taken value).
                    e.reads.push(*r);
                    e.writes = Some((*r, *w));
                }
            }
            Instr::Set { dst, .. } => {
                e.reads_flags = true;
                match dst {
                    Operand::Reg(r, w) => {
                        e.reads.push(*r);
                        e.writes = Some((*r, *w));
                    }
                    Operand::Mem(m) => {
                        e.reads.extend(m.addr_regs());
                        e.mem = Some(MemEffect::Store(*m));
                    }
                    Operand::Imm(_) => {}
                }
            }
            Instr::Jcc { .. } => {
                e.reads_flags = true;
                e.is_branch = true;
            }
            Instr::Jmp { .. } => {
                e.is_branch = true;
            }
            Instr::Loop { kind, .. } => {
                e.is_branch = true;
                e.reads.push(Gpr::Rcx);
                e.writes = Some((Gpr::Rcx, Width::Q));
                e.reads_flags = !matches!(kind, LoopKind::Loop);
            }
            Instr::Fence | Instr::Exit => {}
        }
        e
    }

    /// Memory effect, if any (shortcut over [`Instr::effects`]).
    pub fn mem_effect(&self) -> Option<MemEffect> {
        self.effects().mem
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Mov { dst, src } => write!(f, "MOV {dst}, {src}"),
            Instr::Alu { op, dst, src, lock } => {
                if *lock {
                    write!(f, "LOCK ")?;
                }
                write!(f, "{} {dst}, {src}", op.mnemonic())
            }
            Instr::Un { op, dst, lock } => {
                if *lock {
                    write!(f, "LOCK ")?;
                }
                write!(f, "{} {dst}", op.mnemonic())
            }
            Instr::Cmov { cond, dst, src } => {
                write!(f, "CMOV{} {dst}, {src}", cond.suffix())
            }
            Instr::Set { cond, dst } => write!(f, "SET{} {dst}", cond.suffix()),
            Instr::Jcc { cond, target } => write!(f, "J{} {target}", cond.suffix()),
            Instr::Jmp { target } => write!(f, "JMP {target}"),
            Instr::Loop { kind, target } => write!(f, "{} {target}", kind.mnemonic()),
            Instr::Fence => write!(f, "LFENCE"),
            Instr::Exit => write!(f, "EXIT"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem(base: Gpr, index: Gpr, w: Width) -> MemRef {
        MemRef::base_index(base, index, w)
    }

    #[test]
    fn cond_eval_matches_x86_definitions() {
        let f = Flags::new().with_zf(true);
        assert!(Cond::Z.eval(f) && Cond::Be.eval(f) && Cond::Le.eval(f));
        assert!(!Cond::Nz.eval(f) && !Cond::Nbe.eval(f) && !Cond::Nle.eval(f));

        let f = Flags::new().with_sf(true).with_of(false);
        assert!(Cond::L.eval(f) && Cond::Le.eval(f) && !Cond::Nl.eval(f));

        let f = Flags::new().with_sf(true).with_of(true);
        assert!(Cond::Nl.eval(f) && !Cond::L.eval(f));
    }

    #[test]
    fn cond_parse_aliases() {
        assert_eq!(Cond::parse("A"), Some(Cond::Nbe));
        assert_eq!(Cond::parse("e"), Some(Cond::Z));
        assert_eq!(Cond::parse("GE"), Some(Cond::Nl));
        assert_eq!(Cond::parse("XX"), None);
    }

    #[test]
    fn every_cond_and_negation_partition_flag_space() {
        // For every cc, exactly one of (cc, !cc) holds for all flag states.
        let pairs = [
            (Cond::O, Cond::No),
            (Cond::B, Cond::Nb),
            (Cond::Z, Cond::Nz),
            (Cond::Be, Cond::Nbe),
            (Cond::S, Cond::Ns),
            (Cond::P, Cond::Np),
            (Cond::L, Cond::Nl),
            (Cond::Le, Cond::Nle),
        ];
        for bits in 0..32u8 {
            let f = Flags::from_bits(bits);
            for (c, nc) in pairs {
                assert_ne!(c.eval(f), nc.eval(f), "{c:?} vs {nc:?} at {f}");
            }
        }
    }

    #[test]
    fn effects_of_load() {
        let i = Instr::Mov {
            dst: Operand::Reg(Gpr::Rbx, Width::Q),
            src: Operand::Mem(mem(Gpr::R14, Gpr::Rax, Width::Q)),
        };
        let e = i.effects();
        assert_eq!(e.writes, Some((Gpr::Rbx, Width::Q)));
        assert!(e.reads.contains(&Gpr::R14) && e.reads.contains(&Gpr::Rax));
        assert!(matches!(e.mem, Some(MemEffect::Load(_))));
        assert!(!e.writes_flags && !e.reads_flags);
    }

    #[test]
    fn effects_of_rmw_store() {
        // XOR qword ptr [R14+RBX], RDI — the transmitter in paper Fig. 4.
        let i = Instr::Alu {
            op: AluOp::Xor,
            dst: Operand::Mem(mem(Gpr::R14, Gpr::Rbx, Width::Q)),
            src: Operand::Reg(Gpr::Rdi, Width::Q),
            lock: false,
        };
        let e = i.effects();
        assert!(matches!(e.mem, Some(MemEffect::Rmw(_))));
        assert!(e.writes_flags);
        assert_eq!(e.writes, None);
    }

    #[test]
    fn effects_of_cmp_with_mem_is_load() {
        let i = Instr::Alu {
            op: AluOp::Cmp,
            dst: Operand::Mem(mem(Gpr::R14, Gpr::Rax, Width::D)),
            src: Operand::Imm(0),
            lock: false,
        };
        assert!(matches!(i.effects().mem, Some(MemEffect::Load(_))));
    }

    #[test]
    fn effects_of_loop() {
        let i = Instr::Loop {
            kind: LoopKind::Loopne,
            target: BlockId(2),
        };
        let e = i.effects();
        assert!(e.is_branch && e.reads_flags);
        assert_eq!(e.writes, Some((Gpr::Rcx, Width::Q)));
    }

    #[test]
    fn display_matches_paper_syntax() {
        let i = Instr::Alu {
            op: AluOp::And,
            dst: Operand::Reg(Gpr::Rbx, Width::Q),
            src: Operand::Imm(0b1111_1111_1111),
            lock: false,
        };
        assert_eq!(i.to_string(), "AND RBX, 0b111111111111");

        let i = Instr::Cmov {
            cond: Cond::Nbe,
            dst: Operand::Reg(Gpr::Rsi, Width::W),
            src: Operand::Mem(mem(Gpr::R14, Gpr::Rax, Width::W)),
        };
        assert_eq!(i.to_string(), "CMOVNBE SI, word ptr [R14 + RAX]");

        let i = Instr::Alu {
            op: AluOp::And,
            dst: Operand::Mem(mem(Gpr::R14, Gpr::Rcx, Width::D)),
            src: Operand::Reg(Gpr::Rdi, Width::D),
            lock: true,
        };
        assert_eq!(i.to_string(), "LOCK AND dword ptr [R14 + RCX], EDI");
    }

    #[test]
    fn mem_effective_addr_wraps() {
        let m = MemRef::base_disp(Gpr::R14, -8, Width::Q);
        let addr = m.effective_addr(|_| 4);
        assert_eq!(addr, 4u64.wrapping_sub(8));
    }
}
