//! Program predecode: per-pc dispatch metadata computed once per program.
//!
//! The simulator's dispatch stage runs once per *fetched* instruction —
//! including wrong paths — for every one of the hundreds of inputs a program
//! is scanned against. Recomputing [`Instr::effects`] and re-resolving
//! branch targets on each of those fetches wastes the one property fuzzing
//! has in abundance: the program is fixed while the inputs vary. A
//! [`DecodedProgram`] is built once per [`FlatProgram`] load and turns every
//! per-dispatch question (source registers, destination, flags behaviour,
//! memory effect, control flow) into a table lookup.
//!
//! The decoded form is *purely static*: it never depends on register values
//! or machine state, so sharing it across all inputs of a scan cannot
//! perturb results.

use crate::instr::{Instr, MemEffect};
use crate::program::FlatProgram;
use crate::reg::{Gpr, Width};
use amulet_util::ArrayVec;

/// The renamer's index for FLAGS (one past the 16 GPRs).
pub const FLAGS_SRC: u8 = 16;

/// Inline list of the source indices (GPR index or [`FLAGS_SRC`]) an
/// instruction's dispatch must capture. At most 6 are possible (≤ 4 unique
/// read registers, the partial-width destination, FLAGS); 8 slots give
/// headroom.
pub type SrcIdxList = ArrayVec<u8, 8>;

/// Control-flow class of an instruction, with branch targets already
/// resolved to flat indices (so dispatch never consults the block table).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flow {
    /// Falls through to `pc + 1` (includes `LFENCE`).
    Seq,
    /// Unconditional jump to a flat index.
    Jump {
        /// Resolved flat target index.
        target: usize,
    },
    /// Conditional branch (`Jcc` / `LOOP` family) to a flat index.
    CondBranch {
        /// Resolved flat target index (the not-taken path is `pc + 1`).
        target: usize,
    },
    /// Terminates the test case.
    Exit,
}

/// Static dispatch metadata for one instruction: everything the simulator's
/// rename/dispatch stage needs that does not depend on machine state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodedInstr {
    /// Deduplicated source indices in capture order: read registers first,
    /// then the partial-width destination (a byte/word write merges into the
    /// old value, so the destination is an implicit source), then FLAGS.
    pub srcs: SrcIdxList,
    /// Register written, if any, with the write width.
    pub writes: Option<(Gpr, Width)>,
    /// Whether the instruction writes FLAGS.
    pub writes_flags: bool,
    /// Memory behaviour, if any.
    pub mem: Option<MemEffect>,
    /// Control-flow class with resolved targets.
    pub flow: Flow,
}

impl DecodedInstr {
    /// Decodes one instruction, resolving branch targets against `flat`.
    pub fn decode(instr: &Instr, flat: &FlatProgram) -> Self {
        let eff = instr.effects();
        let mut srcs = SrcIdxList::new();
        let mut add = |ri: u8| {
            if !srcs.contains(&ri) {
                srcs.push(ri);
            }
        };
        for r in &eff.reads {
            add(r.index() as u8);
        }
        if let Some((r, w)) = eff.writes {
            if matches!(w, Width::B | Width::W) {
                add(r.index() as u8);
            }
        }
        if eff.reads_flags {
            add(FLAGS_SRC);
        }
        let flow = match instr {
            Instr::Jmp { target } => Flow::Jump {
                target: flat.target_index(*target),
            },
            Instr::Jcc { target, .. } | Instr::Loop { target, .. } => Flow::CondBranch {
                target: flat.target_index(*target),
            },
            Instr::Exit => Flow::Exit,
            _ => Flow::Seq,
        };
        DecodedInstr {
            srcs,
            writes: eff.writes,
            writes_flags: eff.writes_flags,
            mem: eff.mem,
            flow,
        }
    }

    /// `true` for conditional control flow (mirrors
    /// [`Instr::is_cond_branch`]).
    pub fn is_cond_branch(&self) -> bool {
        matches!(self.flow, Flow::CondBranch { .. })
    }
}

/// Per-pc [`DecodedInstr`] table for one flattened program.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DecodedProgram {
    /// One entry per flat instruction index.
    pub instrs: Vec<DecodedInstr>,
}

impl DecodedProgram {
    /// Decodes every instruction of `flat`.
    pub fn new(flat: &FlatProgram) -> Self {
        DecodedProgram {
            instrs: flat
                .instrs
                .iter()
                .map(|i| DecodedInstr::decode(i, flat))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{AluOp, Cond, Operand};
    use crate::parse::parse_program;
    use crate::program::BlockId;

    #[test]
    fn decode_matches_effects_for_every_instruction_shape() {
        let src = "
            .bb_main.0:
                ADD BL, 5
                MOV RAX, qword ptr [R14 + RCX]
                ADC word ptr [R14 + 8], DX
                CMOVZ RSI, RDI
                LOOPNE .bb_main.1
            .bb_main.1:
                JMP .bb_main.2
            .bb_main.2:
                LFENCE
                EXIT";
        let flat = parse_program(src).unwrap().flatten();
        let decoded = DecodedProgram::new(&flat);
        assert_eq!(decoded.instrs.len(), flat.instrs.len());
        for (pc, (instr, d)) in flat.instrs.iter().zip(&decoded.instrs).enumerate() {
            let eff = instr.effects();
            assert_eq!(d.writes, eff.writes, "pc {pc}");
            assert_eq!(d.writes_flags, eff.writes_flags, "pc {pc}");
            assert_eq!(d.mem, eff.mem, "pc {pc}");
            assert_eq!(d.is_cond_branch(), instr.is_cond_branch(), "pc {pc}");
            // The source list contains exactly: unique read registers, the
            // partial-width destination, FLAGS if read.
            for r in &eff.reads {
                assert!(d.srcs.contains(&(r.index() as u8)), "pc {pc} read {r}");
            }
            if eff.reads_flags {
                assert!(d.srcs.contains(&FLAGS_SRC), "pc {pc} flags");
            }
            if let Some((r, w)) = eff.writes {
                if matches!(w, Width::B | Width::W) {
                    assert!(d.srcs.contains(&(r.index() as u8)), "pc {pc} partial dst");
                }
            }
            // No duplicates.
            let mut seen = [false; 17];
            for &s in &d.srcs {
                assert!(!seen[s as usize], "pc {pc} duplicate src {s}");
                seen[s as usize] = true;
            }
        }
    }

    #[test]
    fn flow_resolves_branch_targets_to_flat_indices() {
        let src = "
            .bb_main.0:
                CMP RAX, 0
                JZ .bb_main.2
            .bb_main.1:
                JMP .bb_main.2
            .bb_main.2:
                EXIT";
        let flat = parse_program(src).unwrap().flatten();
        let decoded = DecodedProgram::new(&flat);
        let jz_target = flat.target_index(BlockId(2));
        assert_eq!(
            decoded.instrs[1].flow,
            Flow::CondBranch { target: jz_target }
        );
        assert_eq!(decoded.instrs[2].flow, Flow::Jump { target: jz_target });
        assert_eq!(decoded.instrs[3].flow, Flow::Exit);
        assert_eq!(decoded.instrs[0].flow, Flow::Seq);
    }

    #[test]
    fn partial_width_destination_is_an_implicit_source() {
        let flat = FlatProgram {
            instrs: vec![
                Instr::Alu {
                    op: AluOp::Add,
                    dst: Operand::Reg(Gpr::Rbx, Width::B),
                    src: Operand::Imm(1),
                    lock: false,
                },
                Instr::Set {
                    cond: Cond::Z,
                    dst: Operand::Reg(Gpr::Rcx, Width::B),
                },
                Instr::Exit,
            ],
            block_start: vec![0],
            origin_block: vec![0, 0, 0],
            labels: vec![".b".into()],
        };
        let d = DecodedProgram::new(&flat);
        assert!(d.instrs[0].srcs.contains(&(Gpr::Rbx.index() as u8)));
        // SETcc writes a byte: the destination register is a merge source.
        assert!(d.instrs[1].srcs.contains(&(Gpr::Rcx.index() as u8)));
        assert!(d.instrs[1].srcs.contains(&FLAGS_SRC));
    }
}
