//! General-purpose registers, operand widths, and the FLAGS register.

use std::fmt;

/// The 16 general-purpose registers of µx86.
///
/// By convention (inherited from the paper's figures and Revizor), `R14`
/// holds the sandbox base address of generated test programs and is never
/// written by generated code.
// `Default` (RAX) exists only as the filler value for inline register
// buffers ([`crate::instr::RegList`]); it carries no ISA meaning.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Gpr {
    #[default]
    Rax = 0,
    Rbx = 1,
    Rcx = 2,
    Rdx = 3,
    Rsi = 4,
    Rdi = 5,
    Rbp = 6,
    Rsp = 7,
    R8 = 8,
    R9 = 9,
    R10 = 10,
    R11 = 11,
    R12 = 12,
    R13 = 13,
    R14 = 14,
    R15 = 15,
}

impl Gpr {
    /// All 16 registers in index order.
    pub const ALL: [Gpr; 16] = [
        Gpr::Rax,
        Gpr::Rbx,
        Gpr::Rcx,
        Gpr::Rdx,
        Gpr::Rsi,
        Gpr::Rdi,
        Gpr::Rbp,
        Gpr::Rsp,
        Gpr::R8,
        Gpr::R9,
        Gpr::R10,
        Gpr::R11,
        Gpr::R12,
        Gpr::R13,
        Gpr::R14,
        Gpr::R15,
    ];

    /// The register used as the sandbox base in generated programs.
    pub const SANDBOX_BASE: Gpr = Gpr::R14;

    /// Dense index in `[0, 16)`.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Converts a dense index back to a register.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 16`.
    pub fn from_index(index: usize) -> Gpr {
        Self::ALL[index]
    }

    /// The canonical 64-bit name (e.g. `"RAX"`).
    pub fn name64(self) -> &'static str {
        NAMES[self.index()][3]
    }

    /// The name at a given operand width (e.g. `AL`, `AX`, `EAX`, `RAX`).
    pub fn name(self, width: Width) -> &'static str {
        NAMES[self.index()][width as usize]
    }

    /// Parses a register name at any width, returning the register and the
    /// width implied by the name.
    pub fn parse(name: &str) -> Option<(Gpr, Width)> {
        let up = name.to_ascii_uppercase();
        for (ri, names) in NAMES.iter().enumerate() {
            for (wi, &n) in names.iter().enumerate() {
                if n == up {
                    return Some((Gpr::from_index(ri), Width::from_index(wi)));
                }
            }
        }
        None
    }
}

impl fmt::Display for Gpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name64())
    }
}

/// Register names per width: `[8-bit, 16-bit, 32-bit, 64-bit]`.
const NAMES: [[&str; 4]; 16] = [
    ["AL", "AX", "EAX", "RAX"],
    ["BL", "BX", "EBX", "RBX"],
    ["CL", "CX", "ECX", "RCX"],
    ["DL", "DX", "EDX", "RDX"],
    ["SIL", "SI", "ESI", "RSI"],
    ["DIL", "DI", "EDI", "RDI"],
    ["BPL", "BP", "EBP", "RBP"],
    ["SPL", "SP", "ESP", "RSP"],
    ["R8B", "R8W", "R8D", "R8"],
    ["R9B", "R9W", "R9D", "R9"],
    ["R10B", "R10W", "R10D", "R10"],
    ["R11B", "R11W", "R11D", "R11"],
    ["R12B", "R12W", "R12D", "R12"],
    ["R13B", "R13W", "R13D", "R13"],
    ["R14B", "R14W", "R14D", "R14"],
    ["R15B", "R15W", "R15D", "R15"],
];

/// Operand width: 1, 2, 4, or 8 bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Width {
    /// 8-bit (`byte ptr`, `AL`).
    B = 0,
    /// 16-bit (`word ptr`, `AX`).
    W = 1,
    /// 32-bit (`dword ptr`, `EAX`).
    D = 2,
    /// 64-bit (`qword ptr`, `RAX`).
    Q = 3,
}

impl Width {
    /// All widths, narrowest first.
    pub const ALL: [Width; 4] = [Width::B, Width::W, Width::D, Width::Q];

    /// Width in bytes.
    pub fn bytes(self) -> u64 {
        1 << (self as u32)
    }

    /// Width in bits.
    pub fn bits(self) -> u32 {
        8 * self.bytes() as u32
    }

    /// Mask selecting the low `bits()` bits.
    pub fn mask(self) -> u64 {
        match self {
            Width::Q => u64::MAX,
            _ => (1u64 << self.bits()) - 1,
        }
    }

    /// The sign bit at this width.
    pub fn sign_bit(self) -> u64 {
        1u64 << (self.bits() - 1)
    }

    /// Truncates a value to this width.
    pub fn trunc(self, value: u64) -> u64 {
        value & self.mask()
    }

    /// Sign-extends the low `bits()` of `value` to 64 bits.
    pub fn sext(self, value: u64) -> u64 {
        let v = self.trunc(value);
        if v & self.sign_bit() != 0 {
            v | !self.mask()
        } else {
            v
        }
    }

    /// Converts a dense index (`0..4`) to a width.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 4`.
    pub fn from_index(index: usize) -> Width {
        Self::ALL[index]
    }

    /// The `ptr` keyword used in memory operands (e.g. `"qword"`).
    pub fn ptr_keyword(self) -> &'static str {
        match self {
            Width::B => "byte",
            Width::W => "word",
            Width::D => "dword",
            Width::Q => "qword",
        }
    }

    /// Parses a `ptr` keyword.
    pub fn from_ptr_keyword(kw: &str) -> Option<Width> {
        match kw.to_ascii_lowercase().as_str() {
            "byte" => Some(Width::B),
            "word" => Some(Width::W),
            "dword" => Some(Width::D),
            "qword" => Some(Width::Q),
            _ => None,
        }
    }

    /// Merges `value` into `old` according to x86 write semantics:
    /// 64/32-bit writes replace (32-bit zero-extends), 16/8-bit writes merge
    /// into the low bits.
    pub fn merge_into(self, old: u64, value: u64) -> u64 {
        match self {
            Width::Q => value,
            Width::D => value & 0xFFFF_FFFF,
            _ => (old & !self.mask()) | (value & self.mask()),
        }
    }
}

impl fmt::Display for Width {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.ptr_keyword())
    }
}

/// The subset of RFLAGS that µx86 models.
///
/// Stored as a small bit set; individual flags are accessed through typed
/// methods. `Flags` is `Copy` and ordered so traces containing flag values
/// are comparable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Flags(u8);

impl Flags {
    const CF: u8 = 1 << 0;
    const PF: u8 = 1 << 1;
    const ZF: u8 = 1 << 2;
    const SF: u8 = 1 << 3;
    const OF: u8 = 1 << 4;

    /// All flags clear.
    pub fn new() -> Self {
        Flags(0)
    }

    /// Constructs from a raw bit pattern (low 5 bits used).
    pub fn from_bits(bits: u8) -> Self {
        Flags(bits & 0x1F)
    }

    /// Raw bit pattern.
    pub fn bits(self) -> u8 {
        self.0
    }

    /// Carry flag.
    pub fn cf(self) -> bool {
        self.0 & Self::CF != 0
    }

    /// Parity flag (even parity of low result byte).
    pub fn pf(self) -> bool {
        self.0 & Self::PF != 0
    }

    /// Zero flag.
    pub fn zf(self) -> bool {
        self.0 & Self::ZF != 0
    }

    /// Sign flag.
    pub fn sf(self) -> bool {
        self.0 & Self::SF != 0
    }

    /// Overflow flag.
    pub fn of(self) -> bool {
        self.0 & Self::OF != 0
    }

    /// Returns a copy with the carry flag set to `v`.
    pub fn with_cf(self, v: bool) -> Self {
        self.with(Self::CF, v)
    }

    /// Returns a copy with the parity flag set to `v`.
    pub fn with_pf(self, v: bool) -> Self {
        self.with(Self::PF, v)
    }

    /// Returns a copy with the zero flag set to `v`.
    pub fn with_zf(self, v: bool) -> Self {
        self.with(Self::ZF, v)
    }

    /// Returns a copy with the sign flag set to `v`.
    pub fn with_sf(self, v: bool) -> Self {
        self.with(Self::SF, v)
    }

    /// Returns a copy with the overflow flag set to `v`.
    pub fn with_of(self, v: bool) -> Self {
        self.with(Self::OF, v)
    }

    fn with(self, bit: u8, v: bool) -> Self {
        if v {
            Flags(self.0 | bit)
        } else {
            Flags(self.0 & !bit)
        }
    }
}

impl fmt::Display for Flags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}{}{}{}{}]",
            if self.cf() { 'C' } else { '-' },
            if self.pf() { 'P' } else { '-' },
            if self.zf() { 'Z' } else { '-' },
            if self.sf() { 'S' } else { '-' },
            if self.of() { 'O' } else { '-' },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_names_roundtrip_at_all_widths() {
        for r in Gpr::ALL {
            for w in Width::ALL {
                let name = r.name(w);
                let (r2, w2) = Gpr::parse(name).expect("name parses");
                assert_eq!((r, w), (r2, w2), "roundtrip for {name}");
            }
        }
    }

    #[test]
    fn parse_is_case_insensitive() {
        assert_eq!(Gpr::parse("rax"), Some((Gpr::Rax, Width::Q)));
        assert_eq!(Gpr::parse("eAx"), Some((Gpr::Rax, Width::D)));
        assert_eq!(Gpr::parse("nope"), None);
    }

    #[test]
    fn width_masks_and_extension() {
        assert_eq!(Width::B.mask(), 0xFF);
        assert_eq!(Width::W.mask(), 0xFFFF);
        assert_eq!(Width::D.mask(), 0xFFFF_FFFF);
        assert_eq!(Width::Q.mask(), u64::MAX);
        assert_eq!(Width::B.sext(0x80), 0xFFFF_FFFF_FFFF_FF80);
        assert_eq!(Width::B.sext(0x7F), 0x7F);
        assert_eq!(Width::D.sext(0x8000_0000), 0xFFFF_FFFF_8000_0000);
    }

    #[test]
    fn write_merge_semantics_match_x86() {
        let old = 0x1122_3344_5566_7788u64;
        assert_eq!(Width::Q.merge_into(old, 0xAA), 0xAA);
        assert_eq!(
            Width::D.merge_into(old, 0xDEAD_BEEF_CAFE_F00Du64),
            0xCAFE_F00D
        );
        assert_eq!(Width::W.merge_into(old, 0xABCD), 0x1122_3344_5566_ABCD);
        assert_eq!(Width::B.merge_into(old, 0xEF), 0x1122_3344_5566_77EF);
    }

    #[test]
    fn flags_accessors() {
        let f = Flags::new().with_zf(true).with_cf(true);
        assert!(f.zf() && f.cf() && !f.sf() && !f.of() && !f.pf());
        let f = f.with_zf(false);
        assert!(!f.zf() && f.cf());
        assert_eq!(format!("{f}"), "[C----]");
    }

    #[test]
    fn flags_bits_roundtrip() {
        for bits in 0..32u8 {
            assert_eq!(Flags::from_bits(bits).bits(), bits);
        }
        // High bits are masked off.
        assert_eq!(Flags::from_bits(0xFF).bits(), 0x1F);
    }
}
