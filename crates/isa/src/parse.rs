//! A small assembler accepting the Intel-flavoured syntax used in the
//! AMuLeT paper's figures, so proof-of-concept programs can be written
//! verbatim.
//!
//! Supported syntax per line: an optional label (`.bb_main.2:`), or one
//! instruction (`LOCK AND dword ptr [R14 + RCX], EDI`). Comments start with
//! `#` or `;`.

use crate::instr::{AluOp, Cond, Instr, LoopKind, MemRef, Operand, UnOp};
use crate::program::{BasicBlock, BlockId, Program};
use crate::reg::{Gpr, Width};
use std::collections::HashMap;
use std::fmt;

/// Error produced by [`parse_program`], with a 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseProgramError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseProgramError {}

/// Parses an assembly listing into a validated [`Program`].
///
/// Instructions before the first label form an implicit entry block named
/// `.entry`. Branch targets may be forward references.
///
/// # Errors
///
/// Returns a [`ParseProgramError`] on the first malformed line, unknown
/// label, or failed structural validation.
///
/// # Examples
///
/// ```
/// use amulet_isa::parse_program;
/// let p = parse_program(
///     "# secret is in RBX (paper Fig. 8b)
///      CMP RAX, 0
///      JNE .l1
///      MOV RAX, qword ptr [R14 + RBX]
///      JMP .l2
///      .l1:
///      MOV RAX, qword ptr [R14 + 64]
///      .l2:
///      EXIT",
/// ).unwrap();
/// assert_eq!(p.blocks.len(), 3);
/// ```
pub fn parse_program(source: &str) -> Result<Program, ParseProgramError> {
    #[derive(Debug)]
    enum RawInstr {
        Done(Instr),
        Branch { text: String, target: String },
    }

    let err = |line: usize, message: String| ParseProgramError { line, message };

    let mut blocks: Vec<(String, Vec<(usize, RawInstr)>)> = Vec::new();
    let ensure_block = |blocks: &mut Vec<(String, Vec<(usize, RawInstr)>)>| {
        if blocks.is_empty() {
            blocks.push((".entry".to_string(), Vec::new()));
        }
    };

    for (lineno, raw) in source.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.split(['#', ';']).next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(label) = line.strip_suffix(':') {
            let label = label.trim();
            if label.is_empty() {
                return Err(err(lineno, "empty label".into()));
            }
            blocks.push((label.to_string(), Vec::new()));
            continue;
        }
        ensure_block(&mut blocks);
        let tokens: Vec<&str> = line.split_whitespace().collect();
        let (lock, rest) = if tokens[0].eq_ignore_ascii_case("LOCK") {
            (true, &tokens[1..])
        } else {
            (false, &tokens[..])
        };
        if rest.is_empty() {
            return Err(err(lineno, "LOCK prefix without instruction".into()));
        }
        let mnemonic = rest[0].to_ascii_uppercase();
        let operand_text = line
            .trim_start()
            .strip_prefix(tokens[0])
            .unwrap_or("")
            .trim_start();
        let operand_text = if lock {
            operand_text
                .strip_prefix(rest[0])
                .or_else(|| {
                    // case-insensitive strip of the mnemonic after LOCK
                    operand_text
                        .get(rest[0].len()..)
                        .filter(|_| operand_text.len() >= rest[0].len())
                })
                .unwrap_or("")
                .trim_start()
        } else {
            operand_text
        };

        // Branch-family mnemonics take a label operand.
        let branch_target = |ops: &str| ops.trim().to_string();

        let parsed: RawInstr = match mnemonic.as_str() {
            "JMP" => RawInstr::Branch {
                text: "JMP".into(),
                target: branch_target(operand_text),
            },
            "LOOP" | "LOOPE" | "LOOPZ" | "LOOPNE" | "LOOPNZ" => RawInstr::Branch {
                text: mnemonic.clone(),
                target: branch_target(operand_text),
            },
            m if m.starts_with('J') && Cond::parse(&m[1..]).is_some() => RawInstr::Branch {
                text: mnemonic.clone(),
                target: branch_target(operand_text),
            },
            "LFENCE" | "MFENCE" => RawInstr::Done(Instr::Fence),
            "EXIT" | "M5EXIT" | "HLT" => RawInstr::Done(Instr::Exit),
            _ => {
                let ops = split_operands(operand_text);
                RawInstr::Done(parse_non_branch(&mnemonic, lock, &ops).map_err(|m| err(lineno, m))?)
            }
        };
        blocks.last_mut().unwrap().1.push((lineno, parsed));
    }

    if blocks.is_empty() {
        return Err(err(0, "empty program".into()));
    }

    let label_ids: HashMap<String, usize> = blocks
        .iter()
        .enumerate()
        .map(|(i, (label, _))| (label.clone(), i))
        .collect();

    let mut program = Program::new();
    for (label, raws) in blocks {
        let mut instrs = Vec::with_capacity(raws.len());
        for (lineno, raw) in raws {
            let ins = match raw {
                RawInstr::Done(i) => i,
                RawInstr::Branch { text, target } => {
                    let &id = label_ids
                        .get(&target)
                        .ok_or_else(|| err(lineno, format!("unknown label `{target}`")))?;
                    let target = BlockId(id);
                    match text.as_str() {
                        "JMP" => Instr::Jmp { target },
                        "LOOP" => Instr::Loop {
                            kind: LoopKind::Loop,
                            target,
                        },
                        "LOOPE" | "LOOPZ" => Instr::Loop {
                            kind: LoopKind::Loope,
                            target,
                        },
                        "LOOPNE" | "LOOPNZ" => Instr::Loop {
                            kind: LoopKind::Loopne,
                            target,
                        },
                        jcc => Instr::Jcc {
                            cond: Cond::parse(&jcc[1..])
                                .ok_or_else(|| err(lineno, format!("bad condition `{jcc}`")))?,
                            target,
                        },
                    }
                }
            };
            instrs.push(ins);
        }
        program.blocks.push(BasicBlock { label, instrs });
    }

    program
        .validate()
        .map_err(|e| err(0, format!("invalid program: {e}")))?;
    Ok(program)
}

/// Splits an operand list on top-level commas (commas inside `[...]` don't
/// occur in this syntax, but be robust anyway).
fn split_operands(text: &str) -> Vec<String> {
    let mut ops = Vec::new();
    let mut depth = 0usize;
    let mut cur = String::new();
    for c in text.chars() {
        match c {
            '[' => {
                depth += 1;
                cur.push(c);
            }
            ']' => {
                depth = depth.saturating_sub(1);
                cur.push(c);
            }
            ',' if depth == 0 => {
                ops.push(cur.trim().to_string());
                cur.clear();
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        ops.push(cur.trim().to_string());
    }
    ops
}

fn parse_non_branch(mnemonic: &str, lock: bool, ops: &[String]) -> Result<Instr, String> {
    let arity = |n: usize| -> Result<(), String> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(format!(
                "{mnemonic} expects {n} operand(s), got {}",
                ops.len()
            ))
        }
    };
    let alu = |op: AluOp| -> Result<Instr, String> {
        arity(2)?;
        Ok(Instr::Alu {
            op,
            dst: parse_operand(&ops[0])?,
            src: parse_operand(&ops[1])?,
            lock,
        })
    };
    let un = |op: UnOp| -> Result<Instr, String> {
        arity(1)?;
        Ok(Instr::Un {
            op,
            dst: parse_operand(&ops[0])?,
            lock,
        })
    };
    match mnemonic {
        "MOV" => {
            arity(2)?;
            Ok(Instr::Mov {
                dst: parse_operand(&ops[0])?,
                src: parse_operand(&ops[1])?,
            })
        }
        "ADD" => alu(AluOp::Add),
        "SUB" => alu(AluOp::Sub),
        "ADC" => alu(AluOp::Adc),
        "SBB" => alu(AluOp::Sbb),
        "AND" => alu(AluOp::And),
        "OR" => alu(AluOp::Or),
        "XOR" => alu(AluOp::Xor),
        "CMP" => alu(AluOp::Cmp),
        "TEST" => alu(AluOp::Test),
        "SHL" | "SAL" => alu(AluOp::Shl),
        "SHR" => alu(AluOp::Shr),
        "SAR" => alu(AluOp::Sar),
        "IMUL" => alu(AluOp::Imul),
        "NOT" => un(UnOp::Not),
        "NEG" => un(UnOp::Neg),
        "INC" => un(UnOp::Inc),
        "DEC" => un(UnOp::Dec),
        m if m.starts_with("CMOV") => {
            arity(2)?;
            let cond = Cond::parse(&m[4..]).ok_or_else(|| format!("bad condition `{m}`"))?;
            Ok(Instr::Cmov {
                cond,
                dst: parse_operand(&ops[0])?,
                src: parse_operand(&ops[1])?,
            })
        }
        m if m.starts_with("SET") => {
            arity(1)?;
            let cond = Cond::parse(&m[3..]).ok_or_else(|| format!("bad condition `{m}`"))?;
            Ok(Instr::Set {
                cond,
                dst: parse_operand(&ops[0])?,
            })
        }
        _ => Err(format!("unknown mnemonic `{mnemonic}`")),
    }
}

fn parse_operand(text: &str) -> Result<Operand, String> {
    let t = text.trim();
    if let Some((r, w)) = Gpr::parse(t) {
        return Ok(Operand::Reg(r, w));
    }
    if let Some(v) = parse_imm(t) {
        return Ok(Operand::Imm(v));
    }
    parse_mem(t).map(Operand::Mem)
}

fn parse_imm(t: &str) -> Option<i64> {
    let (neg, body) = match t.strip_prefix('-') {
        Some(rest) => (true, rest.trim()),
        None => (false, t),
    };
    let v = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(&hex.replace('_', ""), 16).ok()?
    } else if let Some(bin) = body.strip_prefix("0b").or_else(|| body.strip_prefix("0B")) {
        i64::from_str_radix(&bin.replace('_', ""), 2).ok()?
    } else {
        body.replace('_', "").parse::<i64>().ok()?
    };
    Some(if neg { -v } else { v })
}

fn parse_mem(t: &str) -> Result<MemRef, String> {
    // Expect: `<width> ptr [ term (+|-) term ... ]`
    let lower = t.to_ascii_lowercase();
    let ptr_pos = lower
        .find(" ptr")
        .ok_or_else(|| format!("expected register, immediate, or memory operand, got `{t}`"))?;
    let width = Width::from_ptr_keyword(t[..ptr_pos].trim())
        .ok_or_else(|| format!("bad width keyword in `{t}`"))?;
    let open = t.find('[').ok_or_else(|| format!("missing `[` in `{t}`"))?;
    let close = t
        .rfind(']')
        .ok_or_else(|| format!("missing `]` in `{t}`"))?;
    let inner = &t[open + 1..close];

    let mut base: Option<Gpr> = None;
    let mut index: Option<Gpr> = None;
    let mut disp: i64 = 0;

    // Tokenize into signed terms.
    let mut sign = 1i64;
    let mut term = String::new();
    let mut terms: Vec<(i64, String)> = Vec::new();
    for c in inner.chars() {
        match c {
            '+' => {
                if !term.trim().is_empty() {
                    terms.push((sign, term.trim().to_string()));
                }
                term.clear();
                sign = 1;
            }
            '-' => {
                if !term.trim().is_empty() {
                    terms.push((sign, term.trim().to_string()));
                }
                term.clear();
                sign = -1;
            }
            _ => term.push(c),
        }
    }
    if !term.trim().is_empty() {
        terms.push((sign, term.trim().to_string()));
    }
    if terms.is_empty() {
        return Err(format!("empty memory operand `{t}`"));
    }

    for (sign, term) in terms {
        if let Some((r, w)) = Gpr::parse(&term) {
            if w != Width::Q {
                return Err(format!("address register must be 64-bit in `{t}`"));
            }
            if sign < 0 {
                return Err(format!("cannot subtract a register in `{t}`"));
            }
            if base.is_none() {
                base = Some(r);
            } else if index.is_none() {
                index = Some(r);
            } else {
                return Err(format!("too many registers in `{t}`"));
            }
        } else if let Some(v) = parse_imm(&term) {
            disp += sign * v;
        } else {
            return Err(format!("bad address term `{term}` in `{t}`"));
        }
    }
    let base = base.ok_or_else(|| format!("memory operand needs a base register: `{t}`"))?;
    Ok(MemRef {
        base,
        index,
        disp,
        width,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_figure_4_listing() {
        // Figure 4a from the paper, verbatim (modulo the `...` line).
        let src = "
.bb_main.2:
    OR byte ptr [R14 + RDX], AL
    LOOPNE .bb_main.3
    JMP .bb_main.exit

.bb_main.3: # misspeculated
    AND BL, 34
    AND RAX, 0b111111111111
    CMOVNBE SI, word ptr [R14 + RAX]
    AND RBX, 0b111111111111
    XOR qword ptr [R14 + RBX], RDI
    JMP .bb_main.exit

.bb_main.exit:
    EXIT
";
        let p = parse_program(src).unwrap();
        assert_eq!(p.blocks.len(), 3);
        assert_eq!(p.blocks[0].instrs.len(), 3);
        assert_eq!(p.blocks[1].instrs.len(), 6);
        assert!(matches!(
            p.blocks[1].instrs[2],
            Instr::Cmov {
                cond: Cond::Nbe,
                ..
            }
        ));
        assert!(matches!(
            p.blocks[0].instrs[1],
            Instr::Loop {
                kind: LoopKind::Loopne,
                target: BlockId(1)
            }
        ));
    }

    #[test]
    fn parses_paper_figure_9_listing() {
        let src = "
    JS .bb_main.1
    JMP .bb_main.4
.bb_main.1: # mispredicted
    AND RCX, 0b1111111111111111111
    CMOVP AX, word ptr [R14 + RCX]
    AND RAX, 0b1111111111111111111
    MOV dword ptr [R14 + RAX], EBX
    JMP .bb_main.4
.bb_main.4:
    EXIT
";
        let p = parse_program(src).unwrap();
        assert_eq!(p.blocks.len(), 3);
        assert_eq!(p.blocks[0].label, ".entry");
        let f = p.flatten();
        assert_eq!(f.instrs.len(), 8);
    }

    #[test]
    fn display_parse_roundtrip() {
        let src = "
.a:
    MOV RAX, 5
    AND RAX, 0b111111111111
    ADD EBX, dword ptr [R14 + RAX + 8]
    LOCK XOR qword ptr [R14 + RBX], RDI
    SETNZ DL
    CMOVL RCX, RDX
    JNBE .b
    JMP .c
.b:
    NEG RAX
    LOOPE .b
.c:
    LFENCE
    EXIT
";
        let p1 = parse_program(src).unwrap();
        let text = p1.to_string();
        let p2 = parse_program(&text).unwrap();
        // Re-parsing the displayed form must give the same instruction stream.
        assert_eq!(p1.flatten().instrs, p2.flatten().instrs);
    }

    #[test]
    fn rejects_unknown_label() {
        let e = parse_program("JMP .nowhere\nEXIT").unwrap_err();
        assert!(e.message.contains("unknown label"), "{e}");
    }

    #[test]
    fn rejects_unknown_mnemonic() {
        let e = parse_program("FROB RAX, 1\nEXIT").unwrap_err();
        assert!(e.message.contains("unknown mnemonic"), "{e}");
        assert_eq!(e.line, 1);
    }

    #[test]
    fn rejects_bad_arity() {
        let e = parse_program("ADD RAX\nEXIT").unwrap_err();
        assert!(e.message.contains("expects 2"), "{e}");
    }

    #[test]
    fn parses_negative_displacement_and_hex() {
        let p = parse_program("MOV RAX, qword ptr [R14 + RBX - 0x10]\nEXIT").unwrap();
        let Instr::Mov {
            src: Operand::Mem(m),
            ..
        } = p.blocks[0].instrs[0]
        else {
            panic!("expected load");
        };
        assert_eq!(m.disp, -16);
        assert_eq!(m.base, Gpr::R14);
        assert_eq!(m.index, Some(Gpr::Rbx));
    }

    #[test]
    fn rejects_memory_without_base() {
        let e = parse_program("MOV RAX, qword ptr [8]\nEXIT").unwrap_err();
        assert!(e.message.contains("base register"), "{e}");
    }

    #[test]
    fn lock_prefix_requires_instruction() {
        let e = parse_program("LOCK\nEXIT").unwrap_err();
        assert!(e.message.contains("LOCK prefix"), "{e}");
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = parse_program("# header\n\n  ; note\nEXIT").unwrap();
        assert_eq!(p.len(), 1);
    }
}
