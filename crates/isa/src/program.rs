//! Programs as DAGs of basic blocks, and their flattened executable form.

use crate::instr::Instr;
use std::fmt;

/// Index of a basic block within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub usize);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, ".bb{}", self.0)
    }
}

/// A labelled basic block: straight-line instructions, with control flow
/// only at the end (enforced by [`Program::validate`], not by construction).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// Human-readable label (e.g. `.bb_main.2`).
    pub label: String,
    /// Instructions in order.
    pub instrs: Vec<Instr>,
}

/// A µx86 test program: an ordered list of basic blocks forming a DAG
/// (forward edges only in generated programs; the assembler also accepts
/// backward edges for hand-written loops).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    /// Basic blocks in layout order. Fall-through goes to the next block.
    pub blocks: Vec<BasicBlock>,
}

/// Errors returned by [`Program::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateProgramError {
    /// The program has no blocks.
    Empty,
    /// A branch targets a block index that does not exist.
    DanglingTarget {
        /// The block containing the branch.
        block: usize,
        /// The missing target.
        target: usize,
    },
    /// No `EXIT` instruction is reachable from the entry block.
    NoExit,
}

impl fmt::Display for ValidateProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateProgramError::Empty => write!(f, "program has no blocks"),
            ValidateProgramError::DanglingTarget { block, target } => {
                write!(f, "block {block} branches to missing block {target}")
            }
            ValidateProgramError::NoExit => write!(f, "no EXIT reachable from entry"),
        }
    }
}

impl std::error::Error for ValidateProgramError {}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total instruction count across all blocks.
    pub fn len(&self) -> usize {
        self.blocks.iter().map(|b| b.instrs.len()).sum()
    }

    /// `true` if the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Checks structural well-formedness: non-empty, branch targets exist,
    /// and an `EXIT` is reachable from block 0.
    ///
    /// # Errors
    ///
    /// Returns the first violated property.
    pub fn validate(&self) -> Result<(), ValidateProgramError> {
        if self.blocks.is_empty() {
            return Err(ValidateProgramError::Empty);
        }
        for (bi, b) in self.blocks.iter().enumerate() {
            for ins in &b.instrs {
                if let Some(BlockId(t)) = ins.branch_target() {
                    if t >= self.blocks.len() {
                        return Err(ValidateProgramError::DanglingTarget {
                            block: bi,
                            target: t,
                        });
                    }
                }
            }
        }
        // Reachability over fall-through + branch edges.
        let mut seen = vec![false; self.blocks.len()];
        let mut stack = vec![0usize];
        let mut exit_reachable = false;
        while let Some(bi) = stack.pop() {
            if seen[bi] {
                continue;
            }
            seen[bi] = true;
            let b = &self.blocks[bi];
            let mut falls_through = true;
            for ins in &b.instrs {
                if matches!(ins, Instr::Exit) {
                    exit_reachable = true;
                }
                if let Some(BlockId(t)) = ins.branch_target() {
                    stack.push(t);
                    if matches!(ins, Instr::Jmp { .. }) {
                        falls_through = false;
                    }
                }
            }
            if falls_through && bi + 1 < self.blocks.len() {
                stack.push(bi + 1);
            }
        }
        if !exit_reachable {
            return Err(ValidateProgramError::NoExit);
        }
        Ok(())
    }

    /// Flattens into a [`SharedProgram`]. The executor and detector load
    /// programs by reference-counted handle so a scan over N inputs shares
    /// one flattened copy instead of cloning it per test case.
    pub fn flatten_shared(&self) -> SharedProgram {
        std::sync::Arc::new(self.flatten())
    }

    /// Flattens blocks into a single instruction array with branch targets
    /// resolved to flat indices. Execution (emulator and simulator) works on
    /// this form.
    pub fn flatten(&self) -> FlatProgram {
        let mut block_start = Vec::with_capacity(self.blocks.len());
        let mut instrs = Vec::with_capacity(self.len());
        let mut origin = Vec::with_capacity(self.len());
        for (bi, b) in self.blocks.iter().enumerate() {
            block_start.push(instrs.len());
            for ins in &b.instrs {
                instrs.push(*ins);
                origin.push(bi);
            }
        }
        FlatProgram {
            instrs,
            block_start,
            origin_block: origin,
            labels: self.blocks.iter().map(|b| b.label.clone()).collect(),
        }
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.blocks {
            writeln!(f, "{}:", b.label)?;
            for ins in &b.instrs {
                // Branch targets print with real labels.
                match ins.branch_target() {
                    Some(BlockId(t)) if t < self.blocks.len() => {
                        let m = ins.to_string();
                        let mnemonic = m.split_whitespace().next().unwrap_or("");
                        writeln!(f, "    {mnemonic} {}", self.blocks[t].label)?;
                    }
                    _ => writeln!(f, "    {ins}")?,
                }
            }
        }
        Ok(())
    }
}

/// A reference-counted flattened program, shared between the executor, the
/// detector, and the simulator so the per-test-case hot path never clones
/// instruction storage.
pub type SharedProgram = std::sync::Arc<FlatProgram>;

/// The executable, flattened form of a [`Program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatProgram {
    /// All instructions in layout order.
    pub instrs: Vec<Instr>,
    /// Flat index of the first instruction of each block.
    pub block_start: Vec<usize>,
    /// For each flat index, the block it came from.
    pub origin_block: Vec<usize>,
    /// Block labels (for diagnostics).
    pub labels: Vec<String>,
}

impl FlatProgram {
    /// Resolves a branch target block to its flat instruction index.
    ///
    /// # Panics
    ///
    /// Panics if the block id is out of range (programs are validated first).
    pub fn target_index(&self, target: BlockId) -> usize {
        self.block_start[target.0]
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// `true` if there are no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The label of the block containing flat index `idx`.
    pub fn label_of(&self, idx: usize) -> &str {
        &self.labels[self.origin_block[idx]]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{Cond, Operand};
    use crate::reg::{Gpr, Width};

    fn jcc(target: usize) -> Instr {
        Instr::Jcc {
            cond: Cond::Z,
            target: BlockId(target),
        }
    }

    fn mov_reg() -> Instr {
        Instr::Mov {
            dst: Operand::Reg(Gpr::Rax, Width::Q),
            src: Operand::Imm(1),
        }
    }

    fn prog(blocks: Vec<Vec<Instr>>) -> Program {
        Program {
            blocks: blocks
                .into_iter()
                .enumerate()
                .map(|(i, instrs)| BasicBlock {
                    label: format!(".bb_main.{i}"),
                    instrs,
                })
                .collect(),
        }
    }

    #[test]
    fn validate_accepts_wellformed_dag() {
        let p = prog(vec![
            vec![mov_reg(), jcc(2)],
            vec![mov_reg()],
            vec![Instr::Exit],
        ]);
        assert_eq!(p.validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_empty() {
        assert_eq!(Program::new().validate(), Err(ValidateProgramError::Empty));
    }

    #[test]
    fn validate_rejects_dangling_target() {
        let p = prog(vec![vec![jcc(7)], vec![Instr::Exit]]);
        assert_eq!(
            p.validate(),
            Err(ValidateProgramError::DanglingTarget {
                block: 0,
                target: 7
            })
        );
    }

    #[test]
    fn validate_rejects_unreachable_exit() {
        // Block 0 jumps over the exit into block 2 which has no exit.
        let p = prog(vec![
            vec![Instr::Jmp { target: BlockId(2) }],
            vec![Instr::Exit],
            vec![mov_reg()],
        ]);
        assert_eq!(p.validate(), Err(ValidateProgramError::NoExit));
    }

    #[test]
    fn flatten_resolves_targets() {
        let p = prog(vec![
            vec![mov_reg(), jcc(2)],
            vec![mov_reg(), mov_reg()],
            vec![Instr::Exit],
        ]);
        let f = p.flatten();
        assert_eq!(f.len(), 5);
        assert_eq!(f.block_start, vec![0, 2, 4]);
        assert_eq!(f.target_index(BlockId(2)), 4);
        assert_eq!(f.label_of(3), ".bb_main.1");
        assert_eq!(f.origin_block, vec![0, 0, 1, 1, 2]);
    }

    #[test]
    fn display_uses_block_labels() {
        let p = prog(vec![vec![jcc(1)], vec![Instr::Exit]]);
        let text = p.to_string();
        assert!(text.contains("JZ .bb_main.1"), "got: {text}");
        assert!(text.contains(".bb_main.0:"));
    }
}
