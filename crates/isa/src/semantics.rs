//! Architectural semantics of µx86 ALU operations.
//!
//! Both the architectural emulator (the leakage-model substrate) and the
//! out-of-order simulator call these functions, so the two engines cannot
//! drift apart semantically. Where real x86 leaves flags *undefined* (shifts
//! with count > 1, `IMUL`), we define them deterministically — this is sound
//! for relational testing because both engines share the definition.

use crate::instr::{AluOp, UnOp};
use crate::reg::{Flags, Width};

/// Result of an ALU operation: the (width-truncated) value and new FLAGS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AluResult {
    /// Result truncated to the operation width (low bits significant).
    pub value: u64,
    /// Flag state after the operation.
    pub flags: Flags,
}

fn parity_even(value: u64) -> bool {
    (value as u8).count_ones().is_multiple_of(2)
}

fn zsp(flags: Flags, w: Width, value: u64) -> Flags {
    let v = w.trunc(value);
    flags
        .with_zf(v == 0)
        .with_sf(v & w.sign_bit() != 0)
        .with_pf(parity_even(v))
}

fn add_with_carry(w: Width, a: u64, b: u64, carry_in: bool, flags: Flags) -> AluResult {
    let (a, b) = (w.trunc(a), w.trunc(b));
    let sum = a as u128 + b as u128 + carry_in as u128;
    let value = w.trunc(sum as u64);
    let cf = sum > w.mask() as u128;
    // Signed overflow: operands same sign, result different sign.
    let of = ((a ^ value) & (b ^ value) & w.sign_bit()) != 0;
    AluResult {
        value,
        flags: zsp(flags.with_cf(cf).with_of(of), w, value),
    }
}

fn sub_with_borrow(w: Width, a: u64, b: u64, borrow_in: bool, flags: Flags) -> AluResult {
    let (a, b) = (w.trunc(a), w.trunc(b));
    let rhs = b as u128 + borrow_in as u128;
    let value = w.trunc((a as u128).wrapping_sub(rhs) as u64);
    let cf = (a as u128) < rhs;
    let of = ((a ^ b) & (a ^ value) & w.sign_bit()) != 0;
    AluResult {
        value,
        flags: zsp(flags.with_cf(cf).with_of(of), w, value),
    }
}

fn logic(w: Width, value: u64, flags: Flags) -> AluResult {
    let value = w.trunc(value);
    AluResult {
        value,
        flags: zsp(flags.with_cf(false).with_of(false), w, value),
    }
}

/// Executes a two-operand ALU operation.
///
/// `dst` and `src` are the operand values (only the low `width` bits are
/// significant). For `CMP`/`TEST` the returned value equals the computed
/// result but callers must discard it (see [`AluOp::discards_result`]).
pub fn alu(op: AluOp, w: Width, dst: u64, src: u64, flags: Flags) -> AluResult {
    match op {
        AluOp::Add => add_with_carry(w, dst, src, false, flags),
        AluOp::Adc => add_with_carry(w, dst, src, flags.cf(), flags),
        AluOp::Sub | AluOp::Cmp => sub_with_borrow(w, dst, src, false, flags),
        AluOp::Sbb => sub_with_borrow(w, dst, src, flags.cf(), flags),
        AluOp::And | AluOp::Test => logic(w, w.trunc(dst) & w.trunc(src), flags),
        AluOp::Or => logic(w, w.trunc(dst) | w.trunc(src), flags),
        AluOp::Xor => logic(w, w.trunc(dst) ^ w.trunc(src), flags),
        AluOp::Shl => {
            let count = shift_count(w, src);
            if count == 0 {
                return AluResult {
                    value: w.trunc(dst),
                    flags,
                };
            }
            let d = w.trunc(dst);
            let value = w.trunc(d.wrapping_shl(count));
            // CF = last bit shifted out.
            let cf = count <= w.bits() && (d >> (w.bits() - count)) & 1 != 0;
            let of = ((value & w.sign_bit()) != 0) != cf;
            AluResult {
                value,
                flags: zsp(flags.with_cf(cf).with_of(of), w, value),
            }
        }
        AluOp::Shr => {
            let count = shift_count(w, src);
            if count == 0 {
                return AluResult {
                    value: w.trunc(dst),
                    flags,
                };
            }
            let d = w.trunc(dst);
            let value = d.wrapping_shr(count);
            let cf = (d >> (count - 1)) & 1 != 0;
            let of = d & w.sign_bit() != 0;
            AluResult {
                value,
                flags: zsp(flags.with_cf(cf).with_of(of), w, value),
            }
        }
        AluOp::Sar => {
            let count = shift_count(w, src);
            if count == 0 {
                return AluResult {
                    value: w.trunc(dst),
                    flags,
                };
            }
            let d = w.sext(dst) as i64;
            let value = w.trunc((d >> count.min(63)) as u64);
            let cf = (w.sext(dst) >> (count - 1)) & 1 != 0;
            AluResult {
                value,
                flags: zsp(flags.with_cf(cf).with_of(false), w, value),
            }
        }
        AluOp::Imul => {
            let a = w.sext(dst) as i64 as i128;
            let b = w.sext(src) as i64 as i128;
            let product = a * b;
            let value = w.trunc(product as u64);
            let fits = product == w.sext(value) as i64 as i128;
            AluResult {
                value,
                flags: zsp(flags.with_cf(!fits).with_of(!fits), w, value),
            }
        }
    }
}

fn shift_count(w: Width, src: u64) -> u32 {
    let mask = if w == Width::Q { 0x3F } else { 0x1F };
    (src as u32) & mask
}

/// Executes a one-operand ALU operation.
pub fn unary(op: UnOp, w: Width, val: u64, flags: Flags) -> AluResult {
    match op {
        UnOp::Not => AluResult {
            value: w.trunc(!val),
            flags,
        },
        UnOp::Neg => {
            let r = sub_with_borrow(w, 0, val, false, flags);
            AluResult {
                value: r.value,
                flags: r.flags.with_cf(w.trunc(val) != 0),
            }
        }
        UnOp::Inc => {
            // INC preserves CF.
            let cf = flags.cf();
            let r = add_with_carry(w, val, 1, false, flags);
            AluResult {
                value: r.value,
                flags: r.flags.with_cf(cf),
            }
        }
        UnOp::Dec => {
            let cf = flags.cf();
            let r = sub_with_borrow(w, val, 1, false, flags);
            AluResult {
                value: r.value,
                flags: r.flags.with_cf(cf),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f() -> Flags {
        Flags::new()
    }

    #[test]
    fn add_sets_carry_and_overflow() {
        let r = alu(AluOp::Add, Width::B, 0xFF, 1, f());
        assert_eq!(r.value, 0);
        assert!(r.flags.cf() && r.flags.zf() && !r.flags.of());

        let r = alu(AluOp::Add, Width::B, 0x7F, 1, f());
        assert_eq!(r.value, 0x80);
        assert!(r.flags.of() && r.flags.sf() && !r.flags.cf());
    }

    #[test]
    fn sub_and_cmp_agree() {
        let a = alu(AluOp::Sub, Width::Q, 5, 7, f());
        let b = alu(AluOp::Cmp, Width::Q, 5, 7, f());
        assert_eq!(a, b);
        assert!(a.flags.cf(), "borrow sets CF");
        assert!(a.flags.sf());
        assert_eq!(a.value, (-2i64) as u64);
    }

    #[test]
    fn signed_overflow_on_sub() {
        // i8: -128 - 1 overflows.
        let r = alu(AluOp::Sub, Width::B, 0x80, 1, f());
        assert_eq!(r.value, 0x7F);
        assert!(r.flags.of() && !r.flags.sf());
    }

    #[test]
    fn adc_sbb_chain_carry() {
        let flags = f().with_cf(true);
        assert_eq!(alu(AluOp::Adc, Width::Q, 1, 1, flags).value, 3);
        assert_eq!(alu(AluOp::Sbb, Width::Q, 3, 1, flags).value, 1);
    }

    #[test]
    fn logic_clears_cf_of() {
        let flags = f().with_cf(true).with_of(true);
        let r = alu(AluOp::And, Width::D, 0xF0F0, 0x0FF0, flags);
        assert_eq!(r.value, 0x00F0);
        assert!(!r.flags.cf() && !r.flags.of() && !r.flags.zf());
    }

    #[test]
    fn test_matches_and() {
        let a = alu(AluOp::Test, Width::W, 0xAAAA, 0x5555, f());
        assert!(a.flags.zf());
        assert_eq!(a.value, 0);
    }

    #[test]
    fn parity_of_low_byte_only() {
        // 0x103: low byte 0x03 has two bits -> even parity -> PF set.
        let r = alu(AluOp::Or, Width::W, 0x103, 0, f());
        assert!(r.flags.pf());
        // 0x1 -> one bit -> odd parity -> PF clear.
        let r = alu(AluOp::Or, Width::W, 0x100 | 0x1, 0, f());
        assert!(!r.flags.pf());
    }

    #[test]
    fn shl_shifts_and_sets_cf() {
        let r = alu(AluOp::Shl, Width::B, 0b1000_0001, 1, f());
        assert_eq!(r.value, 0b0000_0010);
        assert!(r.flags.cf());
        // Zero count leaves flags untouched.
        let dirty = f().with_cf(true).with_zf(true);
        let r = alu(AluOp::Shl, Width::Q, 5, 0, dirty);
        assert_eq!(r.value, 5);
        assert_eq!(r.flags, dirty);
    }

    #[test]
    fn shift_count_masking_matches_x86() {
        // 32-bit operands mask the count with 0x1F: shifting EAX by 32 is a no-op count of 0.
        let dirty = f().with_cf(true);
        let r = alu(AluOp::Shl, Width::D, 7, 32, dirty);
        assert_eq!(r.value, 7);
        assert_eq!(r.flags, dirty);
        // 64-bit operands mask with 0x3F.
        let r = alu(AluOp::Shl, Width::Q, 1, 65, f());
        assert_eq!(r.value, 2);
    }

    #[test]
    fn shr_vs_sar_sign_handling() {
        let r = alu(AluOp::Shr, Width::B, 0x80, 1, f());
        assert_eq!(r.value, 0x40);
        let r = alu(AluOp::Sar, Width::B, 0x80, 1, f());
        assert_eq!(r.value, 0xC0, "SAR keeps the sign bit");
        assert!(!r.flags.of());
    }

    #[test]
    fn imul_overflow_detection() {
        let r = alu(AluOp::Imul, Width::B, 10, 10, f());
        assert_eq!(r.value, 100);
        assert!(!r.flags.cf() && !r.flags.of());
        let r = alu(AluOp::Imul, Width::B, 100, 2, f());
        assert_eq!(r.value, 200); // -56 as i8
        assert!(r.flags.cf() && r.flags.of());
    }

    #[test]
    fn neg_sets_cf_unless_zero() {
        let r = unary(UnOp::Neg, Width::Q, 5, f());
        assert_eq!(r.value, (-5i64) as u64);
        assert!(r.flags.cf());
        let r = unary(UnOp::Neg, Width::Q, 0, f());
        assert_eq!(r.value, 0);
        assert!(!r.flags.cf() && r.flags.zf());
    }

    #[test]
    fn inc_dec_preserve_cf() {
        let flags = f().with_cf(true);
        let r = unary(UnOp::Inc, Width::B, 0xFF, flags);
        assert_eq!(r.value, 0);
        assert!(r.flags.cf(), "INC must not clobber CF");
        assert!(r.flags.zf());
        let r = unary(UnOp::Dec, Width::B, 0, f());
        assert_eq!(r.value, 0xFF);
        assert!(!r.flags.cf(), "DEC must not set CF");
    }

    #[test]
    fn not_leaves_flags() {
        let dirty = f().with_zf(true).with_cf(true);
        let r = unary(UnOp::Not, Width::W, 0x00FF, dirty);
        assert_eq!(r.value, 0xFF00);
        assert_eq!(r.flags, dirty);
    }
}
