//! A fluent builder for constructing programs in tests and examples.

use crate::instr::{AluOp, Cond, Instr, LoopKind, MemRef, Operand, UnOp};
use crate::program::{BasicBlock, BlockId, Program};
use crate::reg::{Gpr, Width};

/// Incrementally builds a [`Program`] block by block.
///
/// # Examples
///
/// ```
/// use amulet_isa::{ProgramBuilder, Gpr, Width, Cond};
///
/// let mut b = ProgramBuilder::new();
/// let main = b.block(".bb_main.0");
/// let spec = b.block(".bb_main.1");
/// let exit = b.block(".bb_main.exit");
/// b.at(main).cmp_ri(Gpr::Rax, 0).jcc(Cond::Nz, spec).jmp(exit);
/// b.at(spec).load(Gpr::Rbx, Gpr::Rax, Width::Q).jmp(exit);
/// b.at(exit).exit();
/// let program = b.build().unwrap();
/// assert_eq!(program.blocks.len(), 3);
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    blocks: Vec<BasicBlock>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a new empty block and returns its id.
    pub fn block(&mut self, label: &str) -> BlockId {
        self.blocks.push(BasicBlock {
            label: label.to_string(),
            instrs: Vec::new(),
        });
        BlockId(self.blocks.len() - 1)
    }

    /// Returns a cursor appending instructions to `block`.
    ///
    /// # Panics
    ///
    /// Panics if `block` was not created by this builder.
    pub fn at(&mut self, block: BlockId) -> BlockCursor<'_> {
        assert!(block.0 < self.blocks.len(), "unknown block {block:?}");
        BlockCursor {
            builder: self,
            block,
        }
    }

    /// Pushes a raw instruction onto a block.
    pub fn push(&mut self, block: BlockId, instr: Instr) {
        self.blocks[block.0].instrs.push(instr);
    }

    /// Finishes the program, validating it.
    ///
    /// # Errors
    ///
    /// Returns the validation error if the program is malformed.
    pub fn build(self) -> Result<Program, crate::program::ValidateProgramError> {
        let p = Program {
            blocks: self.blocks,
        };
        p.validate()?;
        Ok(p)
    }

    /// Finishes the program without validating (for negative tests).
    pub fn build_unchecked(self) -> Program {
        Program {
            blocks: self.blocks,
        }
    }
}

/// Cursor returned by [`ProgramBuilder::at`]; all methods append one
/// instruction and return the cursor for chaining.
#[derive(Debug)]
pub struct BlockCursor<'a> {
    builder: &'a mut ProgramBuilder,
    block: BlockId,
}

impl BlockCursor<'_> {
    fn push(self, i: Instr) -> Self {
        self.builder.blocks[self.block.0].instrs.push(i);
        self
    }

    /// `MOV dst_reg, imm`.
    pub fn mov_ri(self, dst: Gpr, imm: i64) -> Self {
        self.push(Instr::Mov {
            dst: Operand::Reg(dst, Width::Q),
            src: Operand::Imm(imm),
        })
    }

    /// `MOV dst_reg, src_reg` (64-bit).
    pub fn mov_rr(self, dst: Gpr, src: Gpr) -> Self {
        self.push(Instr::Mov {
            dst: Operand::Reg(dst, Width::Q),
            src: Operand::Reg(src, Width::Q),
        })
    }

    /// Load: `MOV dst, width ptr [R14 + index]`.
    pub fn load(self, dst: Gpr, index: Gpr, width: Width) -> Self {
        self.push(Instr::Mov {
            dst: Operand::Reg(dst, width),
            src: Operand::Mem(MemRef::base_index(Gpr::SANDBOX_BASE, index, width)),
        })
    }

    /// Load with displacement: `MOV dst, width ptr [R14 + disp]`.
    pub fn load_disp(self, dst: Gpr, disp: i64, width: Width) -> Self {
        self.push(Instr::Mov {
            dst: Operand::Reg(dst, width),
            src: Operand::Mem(MemRef::base_disp(Gpr::SANDBOX_BASE, disp, width)),
        })
    }

    /// Store: `MOV width ptr [R14 + index], src`.
    pub fn store(self, index: Gpr, src: Gpr, width: Width) -> Self {
        self.push(Instr::Mov {
            dst: Operand::Mem(MemRef::base_index(Gpr::SANDBOX_BASE, index, width)),
            src: Operand::Reg(src, width),
        })
    }

    /// Store with displacement: `MOV width ptr [R14 + disp], src`.
    pub fn store_disp(self, disp: i64, src: Gpr, width: Width) -> Self {
        self.push(Instr::Mov {
            dst: Operand::Mem(MemRef::base_disp(Gpr::SANDBOX_BASE, disp, width)),
            src: Operand::Reg(src, width),
        })
    }

    /// `op dst_reg, src_reg` (64-bit).
    pub fn alu_rr(self, op: AluOp, dst: Gpr, src: Gpr) -> Self {
        self.push(Instr::Alu {
            op,
            dst: Operand::Reg(dst, Width::Q),
            src: Operand::Reg(src, Width::Q),
            lock: false,
        })
    }

    /// `op dst_reg, imm` (64-bit).
    pub fn alu_ri(self, op: AluOp, dst: Gpr, imm: i64) -> Self {
        self.push(Instr::Alu {
            op,
            dst: Operand::Reg(dst, Width::Q),
            src: Operand::Imm(imm),
            lock: false,
        })
    }

    /// Sandbox masking idiom: `AND reg, mask`.
    pub fn mask(self, reg: Gpr, mask: i64) -> Self {
        self.alu_ri(AluOp::And, reg, mask)
    }

    /// `CMP reg, imm`.
    pub fn cmp_ri(self, reg: Gpr, imm: i64) -> Self {
        self.alu_ri(AluOp::Cmp, reg, imm)
    }

    /// `CMOVcc dst, width ptr [R14 + index]`.
    pub fn cmov_load(self, cond: Cond, dst: Gpr, index: Gpr, width: Width) -> Self {
        self.push(Instr::Cmov {
            cond,
            dst: Operand::Reg(dst, width),
            src: Operand::Mem(MemRef::base_index(Gpr::SANDBOX_BASE, index, width)),
        })
    }

    /// RMW: `op width ptr [R14 + index], src`.
    pub fn rmw(self, op: AluOp, index: Gpr, src: Gpr, width: Width, lock: bool) -> Self {
        self.push(Instr::Alu {
            op,
            dst: Operand::Mem(MemRef::base_index(Gpr::SANDBOX_BASE, index, width)),
            src: Operand::Reg(src, width),
            lock,
        })
    }

    /// `UnOp dst_reg`.
    pub fn un(self, op: UnOp, dst: Gpr) -> Self {
        self.push(Instr::Un {
            op,
            dst: Operand::Reg(dst, Width::Q),
            lock: false,
        })
    }

    /// `Jcc target`.
    pub fn jcc(self, cond: Cond, target: BlockId) -> Self {
        self.push(Instr::Jcc { cond, target })
    }

    /// `JMP target`.
    pub fn jmp(self, target: BlockId) -> Self {
        self.push(Instr::Jmp { target })
    }

    /// `LOOP`/`LOOPE`/`LOOPNE` target.
    pub fn loop_(self, kind: LoopKind, target: BlockId) -> Self {
        self.push(Instr::Loop { kind, target })
    }

    /// `LFENCE`.
    pub fn fence(self) -> Self {
        self.push(Instr::Fence)
    }

    /// `EXIT`.
    pub fn exit(self) -> Self {
        self.push(Instr::Exit)
    }

    /// Pushes an arbitrary instruction.
    pub fn instr(self, i: Instr) -> Self {
        self.push(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_spectre_v1_shape() {
        let mut b = ProgramBuilder::new();
        let main = b.block(".bb_main.0");
        let spec = b.block(".bb_main.1");
        let exit = b.block(".bb_main.exit");
        b.at(main).cmp_ri(Gpr::Rax, 0).jcc(Cond::Nz, spec).jmp(exit);
        b.at(spec)
            .mask(Gpr::Rbx, 0xFFF)
            .load(Gpr::Rdx, Gpr::Rbx, Width::Q)
            .jmp(exit);
        b.at(exit).exit();
        let p = b.build().unwrap();
        assert_eq!(p.blocks.len(), 3);
        assert_eq!(p.len(), 7);
        p.validate().unwrap();
    }

    #[test]
    fn build_fails_on_missing_exit() {
        let mut b = ProgramBuilder::new();
        let main = b.block("m");
        b.at(main).mov_ri(Gpr::Rax, 1);
        assert!(b.build().is_err());
    }

    #[test]
    #[should_panic(expected = "unknown block")]
    fn cursor_panics_on_foreign_block() {
        let mut b = ProgramBuilder::new();
        b.at(BlockId(3));
    }
}
