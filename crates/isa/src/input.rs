//! Test-case inputs: the initial architectural state a test program runs
//! from.
//!
//! Following Revizor (§2.4 of the paper), an *input* is a pseudo-randomly
//! generated blob that initialises the program's registers and its memory
//! sandbox. A (program, input) pair is one *test case*.
//!
//! Inputs are also the unit of taint labelling: label `i < 16` is the `i`-th
//! GPR, label `16 + w` is the `w`-th 8-byte word of sandbox memory. The
//! emulator's taint engine reports which labels influence the contract trace,
//! and input *boosting* mutates only the other labels — producing input
//! classes with provably identical contract traces.

use crate::reg::Gpr;
use amulet_util::Xoshiro256;

/// Size of one sandbox page in bytes.
pub const PAGE_SIZE: usize = 4096;

/// The initial architectural state for one test case.
#[derive(Debug, PartialEq, Eq, Hash)]
pub struct TestInput {
    /// Initial GPR values. `R14`/`RSP` are overwritten by the harness
    /// (sandbox base / unused) regardless of what this holds.
    pub regs: [u64; 16],
    /// Initial FLAGS bit pattern (low 5 bits).
    pub flags_bits: u8,
    /// Initial sandbox memory contents (`pages * PAGE_SIZE` bytes).
    pub mem: Vec<u8>,
}

impl Clone for TestInput {
    fn clone(&self) -> Self {
        TestInput {
            regs: self.regs,
            flags_bits: self.flags_bits,
            mem: self.mem.clone(),
        }
    }

    /// Reuses the destination's memory allocation — input boosting clones
    /// hundreds of megabytes of sandbox images per campaign, so `clone_from`
    /// into a recycled slot is the hot path.
    fn clone_from(&mut self, source: &Self) {
        self.regs = source.regs;
        self.flags_bits = source.flags_bits;
        self.mem.clone_from(&source.mem);
    }
}

impl TestInput {
    /// Creates an all-zero input with the given number of sandbox pages.
    pub fn zeroed(pages: usize) -> Self {
        TestInput {
            regs: [0; 16],
            flags_bits: 0,
            mem: vec![0; pages * PAGE_SIZE],
        }
    }

    /// Generates a pseudo-random input (Revizor-style), with register values
    /// bounded so masked offsets stay interesting.
    pub fn random(rng: &mut Xoshiro256, pages: usize) -> Self {
        let mut input = TestInput::zeroed(pages);
        input.randomize(rng, pages);
        input
    }

    /// Overwrites this input in place with a fresh pseudo-random one —
    /// byte-for-byte identical to [`TestInput::random`] with the same RNG
    /// state, but reusing the memory allocation when the size matches.
    pub fn randomize(&mut self, rng: &mut Xoshiro256, pages: usize) {
        for r in self.regs.iter_mut() {
            *r = rng.next_u64();
        }
        self.regs[Gpr::Rsp.index()] = 0;
        self.regs[Gpr::R14.index()] = 0;
        self.flags_bits = (rng.next_u32() as u8) & 0x1F;
        self.mem.resize(pages * PAGE_SIZE, 0);
        rng.fill_bytes(&mut self.mem);
    }

    /// Number of sandbox pages.
    pub fn pages(&self) -> usize {
        self.mem.len() / PAGE_SIZE
    }

    /// Number of taint labels: 16 registers + one per 8-byte memory word.
    pub fn label_count(&self) -> usize {
        16 + self.mem.len() / 8
    }

    /// The taint label of a register.
    pub fn reg_label(reg: Gpr) -> usize {
        reg.index()
    }

    /// The taint label of the memory word containing sandbox offset `off`.
    pub fn mem_label(&self, off: u64) -> usize {
        16 + (off as usize % self.mem.len()) / 8
    }

    /// Reads the 8-byte memory word with the given word index.
    ///
    /// # Panics
    ///
    /// Panics if `word * 8` is out of bounds.
    pub fn word(&self, word: usize) -> u64 {
        let b = &self.mem[word * 8..word * 8 + 8];
        u64::from_le_bytes(b.try_into().unwrap())
    }

    /// Overwrites the 8-byte memory word with the given word index.
    ///
    /// # Panics
    ///
    /// Panics if `word * 8` is out of bounds.
    pub fn set_word(&mut self, word: usize, value: u64) {
        self.mem[word * 8..word * 8 + 8].copy_from_slice(&value.to_le_bytes());
    }

    /// Applies a value to the input element identified by a taint label:
    /// labels `< 16` set registers, the rest set memory words.
    ///
    /// # Panics
    ///
    /// Panics if the label is out of range.
    pub fn set_label(&mut self, label: usize, value: u64) {
        if label < 16 {
            self.regs[label] = value;
        } else {
            self.set_word(label - 16, value);
        }
    }

    /// Reads the input element identified by a taint label.
    ///
    /// # Panics
    ///
    /// Panics if the label is out of range.
    pub fn label_value(&self, label: usize) -> u64 {
        if label < 16 {
            self.regs[label]
        } else {
            self.word(label - 16)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_is_deterministic_per_seed() {
        let mut a = Xoshiro256::seed_from_u64(1);
        let mut b = Xoshiro256::seed_from_u64(1);
        assert_eq!(TestInput::random(&mut a, 2), TestInput::random(&mut b, 2));
    }

    #[test]
    fn random_pins_harness_registers() {
        let mut rng = Xoshiro256::seed_from_u64(2);
        let i = TestInput::random(&mut rng, 1);
        assert_eq!(i.regs[Gpr::R14.index()], 0);
        assert_eq!(i.regs[Gpr::Rsp.index()], 0);
    }

    #[test]
    fn word_set_get_roundtrip() {
        let mut i = TestInput::zeroed(1);
        i.set_word(3, 0xDEAD_BEEF_1234_5678);
        assert_eq!(i.word(3), 0xDEAD_BEEF_1234_5678);
        assert_eq!(i.mem[24], 0x78, "little endian");
    }

    #[test]
    fn labels_map_registers_then_memory() {
        let mut i = TestInput::zeroed(1);
        i.set_label(Gpr::Rbx.index(), 7);
        assert_eq!(i.regs[1], 7);
        i.set_label(16 + 5, 99);
        assert_eq!(i.word(5), 99);
        assert_eq!(i.label_value(16 + 5), 99);
        assert_eq!(i.label_count(), 16 + 512);
    }

    #[test]
    fn mem_label_wraps_offsets() {
        let i = TestInput::zeroed(1);
        assert_eq!(i.mem_label(0), 16);
        assert_eq!(i.mem_label(9), 16 + 1);
        assert_eq!(i.mem_label(4096 + 8), 16 + 1, "wraps past end");
    }
}
