//! Replays the paper's figure proof-of-concepts **verbatim**: the assembly
//! listings of Figures 4, 6, 8 and 9 are parsed by the µx86 assembler and
//! run on the corresponding defenses, showing the µarch-trace differences
//! the paper reports.
//!
//! ```sh
//! cargo run --release --example paper_figures
//! ```

use amulet::defenses::{gadgets, DefenseKind};
use amulet::isa::{parse_program, TestInput};
use amulet::sim::{SimConfig, Simulator};

/// Paper Figure 4(a): the InvisiSpec UV1 eviction leak. The `.bb_main.2`
/// block is architectural; `.bb_main.3` is mis-speculated; the XOR's RMW
/// load is the transmitter.
const FIG4: &str = "
.bb_main.2:
    OR byte ptr [R14 + RDX], AL
    LOOPNE .bb_main.3
    JMP .bb_main.exit

.bb_main.3: # misspeculated
    AND BL, 34
    AND RAX, 0b111111111111
    CMOVNBE SI, word ptr [R14 + RAX]
    AND RBX, 0b111111111111
    XOR qword ptr [R14 + RBX], RDI
    JMP .bb_main.exit

.bb_main.exit:
    EXIT";

/// Paper Figure 8(b): the SpecLFB UV6 single-load Spectre-v1 (secret in
/// RBX).
const FIG8: &str = "
# RBX is secret
CMP RAX, 0      # non-zero RAX
JNE .l1
# RAX == 0, misprediction
MOV RAX, qword ptr [R14 + RBX]
JMP .l2
.l1:
MOV RAX, qword ptr [R14 + 64]
.l2:
EXIT";

/// Paper Figure 9(a): the STT KV3 store-to-TLB leak.
const FIG9: &str = "
JS .bb_main.1
JMP .bb_main.4
.bb_main.1: # mispredicted
AND RCX, 0b1111111111111111111
CMOVP AX, word ptr [R14 + RCX]
AND RAX, 0b1111111111111111111
MOV dword ptr [R14 + RAX], EBX
JMP .bb_main.4
.bb_main.4:
EXIT";

fn header(title: &str) {
    println!("\n==================== {title} ====================");
}

fn main() {
    fig4_invisispec_eviction();
    fig6_mshr_interference();
    fig8_speclfb_first_load();
    fig9_stt_store_tlb();
}

/// Figure 4: two inputs differing only in the mis-speculated RBX evict
/// different prefilled lines under buggy InvisiSpec.
fn fig4_invisispec_eviction() {
    header("Figure 4 — InvisiSpec UV1: speculative L1D eviction");
    println!("{}", parse_program(FIG4).unwrap());
    let flat = parse_program(FIG4).unwrap().flatten();
    let run = |secret: u64| {
        let mut sim = Simulator::new(SimConfig::default(), DefenseKind::InvisiSpec.build());
        // Train LOOPNE taken: AL = 1 keeps ZF clear after the OR, RCX large
        // keeps the counter non-zero.
        for _ in 0..12 {
            let mut t = TestInput::zeroed(1);
            t.regs[0] = 1; // AL = 1 -> OR result non-zero -> ZF = 0
            t.regs[2] = 40; // RCX large: LOOPNE taken
            sim.load_test(&flat, &t);
            sim.run();
        }
        sim.flush_caches();
        sim.prefill_l1d_conflicting();
        // Victim: RCX = 1 makes LOOPNE fall through while predicted taken;
        // the OR's RMW load misses, so the branch resolves ~a memory
        // latency later — plenty of window for .bb_main.3 to run.
        let mut v = TestInput::zeroed(1);
        v.regs[2] = 1;
        v.regs[3] = 0x200; // RDX: the OR's (missing) address
        v.regs[1] = secret; // RBX: the mis-speculated XOR's address
        sim.load_test(&flat, &v);
        sim.run();
        sim.snapshot().l1d
    };
    let a = run(0xA00);
    let b = run(0x100);
    let missing_a: Vec<u64> = b.iter().filter(|x| !a.contains(x)).copied().collect();
    let missing_b: Vec<u64> = a.iter().filter(|x| !b.contains(x)).copied().collect();
    println!("input A (RBX=0xA00): evicted {missing_a:x?}");
    println!("input B (RBX=0x100): evicted {missing_b:x?}");
    assert_ne!(a, b, "UV1 must distinguish the inputs");
    println!("=> speculative loads leak their address through evictions (UV1)");
}

/// Figure 6 / Table 7: same-core speculative interference. As in the
/// paper, UV2 is *found by fuzzing* patched InvisiSpec under amplification
/// (2 MSHRs); the violation's debug log shows the MSHR stalls and the
/// delayed expose (the Table 7 operation sequence).
fn fig6_mshr_interference() {
    use amulet::contracts::ContractKind;
    use amulet::fuzz::{classify, Campaign, CampaignConfig, ViolationClass};

    header("Figure 6 / Table 7 — InvisiSpec UV2: same-core MSHR interference");
    let mut cfg = CampaignConfig::quick(DefenseKind::InvisiSpecPatched, ContractKind::CtSeq);
    cfg.sim = SimConfig::default().amplified(2, 2);
    cfg.programs_per_instance = 60;
    cfg.instances = 4;
    let report = Campaign::new(cfg).run();
    let uv2 = report
        .violations
        .iter()
        .find(|(_, c)| *c == ViolationClass::MshrInterference);
    match uv2 {
        Some((v, _)) => {
            println!(
                "found {} after {} test cases",
                classify(v),
                report.stats.cases
            );
            println!("{}", v.report());
        }
        None => println!(
            "no UV2 in this run ({} cases; classes found: {:?}) — rerun or raise AMULET_PROGRAMS",
            report.stats.cases,
            report.unique_classes()
        ),
    }
}

/// Figure 8: the paper's single-speculative-load Spectre-v1 against SpecLFB,
/// leaking the register secret only through the buggy first-load
/// optimisation.
fn fig8_speclfb_first_load() {
    header("Figure 8 — SpecLFB UV6: first speculative load unprotected");
    println!("{}", parse_program(FIG8).unwrap());
    let flat = parse_program(FIG8).unwrap().flatten();
    let run = |kind: DefenseKind, secret: u64| {
        let mut sim = Simulator::new(SimConfig::default(), kind.build());
        // Train the JNE *not taken* (RAX == 0 in training) so a non-zero
        // RAX victim mispredicts into the secret-dependent load.
        for _ in 0..12 {
            let mut t = TestInput::zeroed(1);
            // Slow condition: nothing needed; the branch depends on RAX
            // directly, so give the frontend a head start by training only.
            t.regs[0] = 0;
            sim.load_test(&flat, &t);
            sim.run();
        }
        sim.flush_caches();
        let mut v = TestInput::zeroed(1);
        v.regs[0] = 1; // JNE taken architecturally; predicted not-taken
        v.regs[1] = secret & 0xFFF; // RBX secret
        sim.load_test(&flat, &v);
        sim.run();
        sim.snapshot().l1d
    };
    for kind in [DefenseKind::SpecLfb, DefenseKind::SpecLfbPatched] {
        let a = run(kind, 0xA00);
        let b = run(kind, 0x300);
        println!(
            "{:<18} secret=0xA00 -> {a:x?}\n{:<18} secret=0x300 -> {b:x?}  ({})",
            kind.name(),
            "",
            if a != b { "LEAKS" } else { "protected" }
        );
    }
}

/// Figure 9: STT's tainted speculative store installs a secret-dependent
/// D-TLB entry (KV3).
fn fig9_stt_store_tlb() {
    header("Figure 9 — STT KV3: tainted store leaks via the D-TLB");
    println!("{}", parse_program(FIG9).unwrap());
    let src = gadgets::spectre_v1(
        "AND RCX, 0b1111111111111111111
         CMOVP AX, word ptr [R14 + RCX]
         AND RAX, 0b1111111111111111111
         MOV dword ptr [R14 + RAX], EBX",
    );
    let flat = parse_program(&src).unwrap().flatten();
    let run = |kind: DefenseKind, secret: u64| {
        let cfg = SimConfig::default().with_sandbox_pages(128);
        let mut sim = Simulator::new(cfg, kind.build());
        for _ in 0..12 {
            sim.load_test(&flat, &gadgets::train_input(128));
            sim.run();
        }
        sim.flush_caches();
        let mut v = gadgets::victim_input(128);
        v.regs[2] = 96; // access load address (even parity: CMOVP moves)
        v.set_word(12, secret);
        sim.load_test(&flat, &v);
        sim.run();
        sim.snapshot().dtlb
    };
    for kind in [DefenseKind::Stt, DefenseKind::SttPatched] {
        let a = run(kind, 0x9000);
        let b = run(kind, 0xD000);
        println!(
            "{:<14} secret=0x9000 -> TLB {a:?} | secret=0xD000 -> TLB {b:?}  ({})",
            kind.name(),
            if a != b { "LEAKS" } else { "protected" }
        );
    }
}
