//! µarch trace format comparison (§4.3 / Table 5): run the same baseline
//! campaign under each of the four trace formats and compare throughput and
//! violation counts.
//!
//! ```sh
//! cargo run --release --example trace_formats
//! ```

use amulet::contracts::ContractKind;
use amulet::defenses::DefenseKind;
use amulet::fuzz::{Campaign, CampaignConfig, TraceFormat};

fn main() {
    println!(
        "{:<28} {:>12} {:>12} {:>10}",
        "Trace format", "Throughput", "Violations", "Cases"
    );
    for format in TraceFormat::ALL {
        let mut cfg = CampaignConfig::quick(DefenseKind::Baseline, ContractKind::CtSeq);
        cfg.format = format;
        cfg.programs_per_instance = 25;
        cfg.instances = 4;
        let report = Campaign::new(cfg).run();
        println!(
            "{:<28} {:>10.0}/s {:>12} {:>10}",
            format.name(),
            report.throughput(),
            report.violations.len(),
            report.stats.cases,
        );
    }
    println!("\nThe baseline L1D+TLB snapshot balances speed and coverage (Table 5).");
}
