//! Audit a secure-speculation defense, paper-style: run a testing campaign
//! against its claimed contract and classify every confirmed violation
//! against the paper's finding catalogue (UV1–UV6, KV1–KV3).
//!
//! ```sh
//! cargo run --release --example audit_defense -- invisispec
//! cargo run --release --example audit_defense -- speclfb ct-seq
//! cargo run --release --example audit_defense -- stt arch-seq
//! cargo run --release --example audit_defense -- all
//! ```

use amulet::contracts::ContractKind;
use amulet::defenses::DefenseKind;
use amulet::fuzz::{Campaign, CampaignConfig, CampaignReport};
use std::env;

fn parse_defense(name: &str) -> Option<DefenseKind> {
    Some(match name.to_ascii_lowercase().as_str() {
        "baseline" => DefenseKind::Baseline,
        "invisispec" => DefenseKind::InvisiSpec,
        "invisispec-patched" => DefenseKind::InvisiSpecPatched,
        "cleanupspec" => DefenseKind::CleanupSpec,
        "cleanupspec-patched" => DefenseKind::CleanupSpecPatched,
        "stt" => DefenseKind::Stt,
        "stt-patched" => DefenseKind::SttPatched,
        "speclfb" => DefenseKind::SpecLfb,
        "speclfb-patched" => DefenseKind::SpecLfbPatched,
        "ghostminion" => DefenseKind::GhostMinion,
        _ => return None,
    })
}

fn parse_contract(name: &str) -> Option<ContractKind> {
    Some(match name.to_ascii_lowercase().as_str() {
        "ct-seq" => ContractKind::CtSeq,
        "ct-cond" => ContractKind::CtCond,
        "arch-seq" => ContractKind::ArchSeq,
        "ct-bpas" => ContractKind::CtBpas,
        _ => return None,
    })
}

/// The contract each defense claims (paper §3.1): CT-SEQ for the memory-
/// system defenses, ARCH-SEQ for STT's non-interference guarantee.
fn claimed_contract(defense: DefenseKind) -> ContractKind {
    match defense {
        DefenseKind::Stt | DefenseKind::SttPatched => ContractKind::ArchSeq,
        _ => ContractKind::CtSeq,
    }
}

fn audit(defense: DefenseKind, contract: ContractKind, programs: usize) -> CampaignReport {
    let mut cfg = CampaignConfig::quick(defense, contract);
    // KV3 is the paper's rarest finding (3 hours on gem5); give STT a
    // bigger program budget so the default audit still surfaces it.
    let stt = matches!(defense, DefenseKind::Stt | DefenseKind::SttPatched);
    cfg.programs_per_instance = if stt { programs * 2 } else { programs };
    cfg.instances = env_usize("AMULET_INSTANCES", 4);
    Campaign::new(cfg).run()
}

fn env_usize(key: &str, default: usize) -> usize {
    env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let programs = env_usize("AMULET_PROGRAMS", 30);
    let targets: Vec<DefenseKind> = match args.first().map(String::as_str) {
        Some("all") | None => vec![
            DefenseKind::Baseline,
            DefenseKind::InvisiSpec,
            DefenseKind::CleanupSpec,
            DefenseKind::SpecLfb,
            DefenseKind::Stt,
        ],
        Some(name) => match parse_defense(name) {
            Some(d) => vec![d],
            None => {
                eprintln!("unknown defense `{name}`");
                std::process::exit(1);
            }
        },
    };
    let contract_override = args.get(1).and_then(|c| parse_contract(c));

    println!("{}", CampaignReport::summary_header());
    for defense in targets {
        let contract = contract_override.unwrap_or_else(|| claimed_contract(defense));
        let report = audit(defense, contract, programs);
        println!("{}", report.summary_row());
        for (class, count) in report.unique_classes() {
            println!("    {count:>4} x {class}");
        }
    }
}
