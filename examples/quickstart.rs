//! Quickstart: test the unprotected out-of-order CPU against CT-SEQ and
//! watch AMuLeT find a Spectre-v1 contract violation within seconds.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use amulet::contracts::{ContractKind, LeakageModel};
use amulet::defenses::DefenseKind;
use amulet::fuzz::{
    classify, minimize, Campaign, CampaignConfig, CampaignReport, Detector, Executor,
    ExecutorConfig,
};

fn main() {
    // A small campaign: 2 parallel instances, a few dozen random programs,
    // 28 boosted inputs per program, against the CT-SEQ contract (constant-
    // time w.r.t. cache addresses, sequential execution only).
    let mut cfg = CampaignConfig::quick(DefenseKind::Baseline, ContractKind::CtSeq);
    cfg.programs_per_instance = 40;
    cfg.stop_on_first = true;

    println!(
        "testing {} against {} ({} instances x {} programs x {} inputs)...\n",
        cfg.defense,
        cfg.contract,
        cfg.instances,
        cfg.programs_per_instance,
        cfg.inputs.total()
    );

    let report: CampaignReport = Campaign::new(cfg).run();

    println!("{}", CampaignReport::summary_header());
    println!("{}", report.summary_row());

    if let Some((violation, _)) = report.violations.first() {
        println!("\nfirst confirmed violation ({}):", classify(violation));
        println!("{}", violation.report());

        // Shrink the test case before root-causing (Revizor-style).
        let detector = Detector::new(LeakageModel::new(report.config.contract));
        let mut executor = Executor::new(ExecutorConfig::new(report.config.defense));
        let reduced = minimize(violation, &detector, &mut executor);
        println!(
            "minimised: removed {} instructions ({} checks); reduced program:\n{}",
            reduced.removed, reduced.attempts, reduced.program
        );
    } else {
        println!("\nno violation found — try more programs (AMULET_PROGRAMS).");
    }
}
