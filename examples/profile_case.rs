//! Per-case cost breakdown of the fuzzing hot path (dev tool).
//!
//! Splits one `Executor::run_case` into its components and times each over
//! the fixed-seed quick-campaign workload, so perf work targets the real
//! hotspots instead of folklore. Run with `--release`.

use amulet::contracts::{ContractKind, LeakageModel};
use amulet::defenses::DefenseKind;
use amulet::fuzz::{
    boosted_inputs, Executor, ExecutorConfig, Generator, GeneratorConfig, InputGenConfig,
};
use amulet::sim::{DigestKind, LogMode, SimConfig, Simulator};
use amulet::util::Xoshiro256;
use std::hint::black_box;
use std::time::Instant;

fn main() {
    let model = LeakageModel::new(ContractKind::CtSeq);
    let mut generator = Generator::new(GeneratorConfig::default(), 11);
    let mut rng = Xoshiro256::seed_from_u64(12);
    let input_cfg = InputGenConfig {
        base_inputs: 4,
        mutations: 6,
        pages: 1,
    };
    let workload: Vec<_> = (0..60)
        .map(|_| {
            let flat = generator.program().flatten_shared();
            let inputs = boosted_inputs(&model, &flat, &input_cfg, &mut rng);
            (flat, inputs)
        })
        .collect();
    let cases: usize = workload.iter().map(|(_, i)| i.len()).sum();
    let reps = 20;

    // Arm 1: the full hot path.
    let mut executor = Executor::new(ExecutorConfig::new(DefenseKind::Baseline));
    let t0 = Instant::now();
    for _ in 0..reps {
        for (flat, inputs) in &workload {
            for input in inputs {
                black_box(executor.run_case(flat, input));
            }
        }
    }
    let full = t0.elapsed().as_secs_f64();

    // Arm 2: components on a bare simulator. Note the reset here is the
    // plain flush + full prefill restore — the executor's real reset path
    // keeps the L1D tracking baseline alive and restores touched sets only,
    // so arm 1's total can undercut this arm's component sum.
    let mut sim = Simulator::new(SimConfig::default(), DefenseKind::Baseline.build());
    sim.set_log_mode(LogMode::Off);
    let (mut t_reset, mut t_load, mut t_run, mut t_digest) = (0.0f64, 0.0, 0.0, 0.0);
    for _ in 0..reps {
        for (flat, inputs) in &workload {
            for input in inputs {
                let t = Instant::now();
                sim.flush_caches();
                sim.prefill_l1d_conflicting();
                t_reset += t.elapsed().as_secs_f64();
                let t = Instant::now();
                sim.load_test_shared(flat, input);
                t_load += t.elapsed().as_secs_f64();
                let t = Instant::now();
                black_box(sim.run());
                t_run += t.elapsed().as_secs_f64();
                let t = Instant::now();
                black_box(sim.trace_digest(DigestKind::L1dTlb { include_l1i: false }));
                t_digest += t.elapsed().as_secs_f64();
            }
        }
    }
    // Workload shape: what one case looks like to the cycle loop.
    let (mut fetched, mut committed, mut cycles, mut warped, mut squashes) =
        (0u64, 0u64, 0u64, 0u64, 0u64);
    for (flat, inputs) in &workload {
        for input in inputs {
            let r = executor.run_case(flat, input);
            fetched += r.result.fetched as u64;
            committed += r.result.committed as u64;
            cycles += r.result.cycles;
            warped += r.result.warped_cycles;
            squashes += r.result.squashes as u64;
        }
    }
    let c = cases as f64;
    println!(
        "shape: {:.1} fetched, {:.1} committed, {:.1} cycles ({:.1} stepped), {:.2} squashes /case",
        fetched as f64 / c,
        committed as f64 / c,
        cycles as f64 / c,
        (cycles - warped) as f64 / c,
        squashes as f64 / c
    );
    let n = (reps * cases) as f64;
    println!("cases: {cases} x {reps} reps");
    println!("full run_case:   {:>8.0} ns/case", full / n * 1e9);
    println!("  flush+prefill: {:>8.0} ns/case", t_reset / n * 1e9);
    println!("  load_test:     {:>8.0} ns/case", t_load / n * 1e9);
    println!("  sim.run():     {:>8.0} ns/case", t_run / n * 1e9);
    println!("  trace_digest:  {:>8.0} ns/case", t_digest / n * 1e9);
}
