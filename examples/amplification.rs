//! Leakage amplification (§3.4 / Table 6): testing patched InvisiSpec with
//! progressively smaller µarch structures until the same-core speculative
//! interference vulnerability (UV2) becomes observable.
//!
//! ```sh
//! cargo run --release --example amplification
//! ```

use amulet::contracts::ContractKind;
use amulet::defenses::DefenseKind;
use amulet::fuzz::{Campaign, CampaignConfig};
use amulet::sim::SimConfig;
use amulet::util::fmt_duration_s;

fn main() {
    let configs = [
        ("8-way L1D, 256 MSHRs", SimConfig::default()),
        (
            "2-way L1D, 256 MSHRs",
            SimConfig::default().amplified(2, 256),
        ),
        ("2-way L1D,   2 MSHRs", SimConfig::default().amplified(2, 2)),
    ];

    println!("InvisiSpec (patched) under structure-size amplification:");
    println!(
        "{:<24} {:>10} {:>10} {:>9}",
        "Configuration", "Cases", "Time", "Violation"
    );
    for (name, sim) in configs {
        let mut cfg = CampaignConfig::quick(DefenseKind::InvisiSpecPatched, ContractKind::CtSeq);
        cfg.sim = sim;
        cfg.programs_per_instance = 40;
        cfg.instances = 4;
        cfg.stop_on_first = true;
        let report = Campaign::new(cfg).run();
        println!(
            "{:<24} {:>10} {:>10} {:>9}",
            name,
            report.stats.cases,
            fmt_duration_s(report.wall.as_secs_f64()),
            if report.violation_found() { "YES" } else { "-" },
        );
        for (class, n) in report.unique_classes() {
            println!("    {n:>4} x {class}");
        }
    }
    println!("\nReducing MSHRs amplifies contention, exposing UV2 (paper Table 6).");
}
