//! Prints a behavioral fingerprint of quick campaigns across defenses —
//! used to assert refactors keep detection bit-identical.
use amulet::contracts::ContractKind;
use amulet::defenses::DefenseKind;
use amulet::fuzz::{Campaign, CampaignConfig};

fn main() {
    for (d, c) in [
        (DefenseKind::Baseline, ContractKind::CtSeq),
        (DefenseKind::Baseline, ContractKind::CtCond),
        (DefenseKind::InvisiSpec, ContractKind::CtSeq),
        (DefenseKind::InvisiSpecPatched, ContractKind::CtSeq),
        (DefenseKind::CleanupSpec, ContractKind::CtSeq),
        (DefenseKind::CleanupSpecPatched, ContractKind::CtSeq),
        (DefenseKind::SpecLfb, ContractKind::CtSeq),
        (DefenseKind::SpecLfbPatched, ContractKind::CtSeq),
        (DefenseKind::GhostMinion, ContractKind::CtSeq),
        (DefenseKind::Stt, ContractKind::ArchSeq),
        (DefenseKind::SttPatched, ContractKind::ArchSeq),
        (DefenseKind::DelayOnMiss, ContractKind::CtSeq),
    ] {
        let mut cfg = CampaignConfig::quick(d, c);
        cfg.programs_per_instance = 25;
        cfg.instances = 2;
        if d == DefenseKind::Stt {
            cfg.generator.stores = true;
        }
        let r = Campaign::new(cfg).run();
        println!(
            "{:<22} {:<9} cases={} classes={} cand={} vruns={} conf={} uniq={:?}",
            d.name(),
            c.name(),
            r.stats.cases,
            r.stats.classes,
            r.stats.candidates,
            r.stats.validation_runs,
            r.stats.confirmed,
            r.unique_classes()
        );
    }
}
