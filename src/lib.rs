//! AMuLeT-rs — a Rust reproduction of *AMuLeT: Automated Design-Time Testing
//! of Secure Speculation Countermeasures* (ASPLOS 2025).
//!
//! This facade crate re-exports every subsystem of the workspace under one
//! roof, which is what the examples and integration tests use:
//!
//! - [`isa`]: the µx86 instruction set (registers, programs, assembler).
//! - [`emu`]: the architectural emulator + taint engine (Unicorn substitute).
//! - [`contracts`]: leakage contracts — CT-SEQ, CT-COND, ARCH-SEQ.
//! - [`sim`]: the speculative out-of-order simulator (gem5 substitute).
//! - [`defenses`]: InvisiSpec, CleanupSpec, STT, SpecLFB (+ the bugs the
//!   paper found, individually toggleable).
//! - [`fuzz`]: the AMuLeT fuzzer itself — generators, executors, violation
//!   detection, campaigns, and analysis.
//! - [`util`]: deterministic PRNG and helpers.
//!
//! # Quick start
//!
//! ```
//! use amulet::fuzz::{CampaignConfig, Campaign};
//! use amulet::defenses::DefenseKind;
//! use amulet::contracts::ContractKind;
//!
//! let cfg = CampaignConfig::quick(DefenseKind::Baseline, ContractKind::CtSeq);
//! let report = Campaign::new(cfg).run();
//! // The unprotected out-of-order CPU leaks under CT-SEQ (Spectre-v1).
//! assert!(report.violation_found());
//! ```

pub use amulet_contracts as contracts;
pub use amulet_core as fuzz;
pub use amulet_defenses as defenses;
pub use amulet_emu as emu;
pub use amulet_isa as isa;
pub use amulet_sim as sim;
pub use amulet_util as util;
